"""Deterministic Louvain community detection (Blondel et al., 2008).

G-TxAllo seeds its optimisation with a Louvain partition (paper Section V-B,
Algorithm 1 line 1).  The stock Louvain method visits nodes in random order;
TxAllo requires *determinism* so every miner derives the same allocation
without an extra consensus round (Section IV-A).  This implementation
therefore:

* visits nodes in ascending identifier order (the paper suggests ordering by
  account hash — for hex address strings these coincide);
* breaks modularity ties toward the smallest community label;
* moves a node only on a strictly positive modularity gain.

Two identical inputs produce byte-identical partitions, which the test-suite
asserts.

Self-loops follow the usual convention: a loop of weight ``w`` contributes
``2w`` to its node's degree and ``w`` to the total weight ``m``.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core import backends
from repro.core.graph import Node, TransactionGraph

#: Moves whose modularity gain is below this are treated as no-ops.
_MIN_GAIN = 1e-12


def louvain_partition(
    graph: TransactionGraph,
    max_levels: int = 32,
    resolution: float = 1.0,
    backend: str = "fast",
) -> Dict[Node, int]:
    """Partition ``graph`` into communities by modularity maximisation.

    Returns a mapping from every node to a community label in
    ``0 .. l-1``; labels are assigned in order of first appearance over the
    sorted node sequence, so they are deterministic and dense.

    ``resolution`` is the standard resolution parameter (1.0 reproduces
    plain modularity); ``max_levels`` bounds the aggregation recursion.

    ``backend`` names a tier in the engine-backend registry
    (:mod:`repro.core.backends`); unavailable tiers resolve to their
    declared fallback.  ``"fast"`` (the default) runs the flat-array
    implementation over the frozen CSR graph (:mod:`repro.core.engine`)
    and is bit-identical to ``"reference"``, the dict-based
    implementation below (``tests/test_engine_parity.py`` pins it).
    ``"turbo"`` warm-starts level-0 local moving from the previous
    snapshot's partition (:func:`repro.core.engine.louvain_flat_warm`)
    and ``"vector"`` runs synchronous numpy rounds
    (:mod:`repro.core.vector`); both may return a *different* (still
    deterministic) partition — the allocation built on top is gated on
    the TxAllo objective instead of partition equality.
    """
    spec = backends.resolve_backend(backend)
    return spec.louvain_kernel(graph, max_levels, resolution)


def _louvain_reference_kernel(
    graph: TransactionGraph,
    max_levels: int = 32,
    resolution: float = 1.0,
) -> Dict[Node, int]:
    """The dict-based executable specification (``backend="reference"``)."""
    nodes = graph.nodes_sorted()
    if not nodes:
        return {}

    # Level-0 working copy: adjacency (without self-loops), loop weights.
    adj: Dict[int, Dict[int, float]] = {}
    loops: List[float] = []
    index_of = {v: i for i, v in enumerate(nodes)}
    for i, v in enumerate(nodes):
        row = {}
        loop = 0.0
        for u, w in graph.neighbours(v).items():
            if u == v:
                loop = w
            else:
                row[index_of[u]] = w
        adj[i] = row
        loops.append(loop)

    # membership[i] maps a level-0 node to its current coarse community.
    membership = list(range(len(nodes)))

    for _level in range(max_levels):
        community, improved = _one_level(adj, loops, resolution)
        # Renumber communities densely in order of first appearance.
        relabel: Dict[int, int] = {}
        for i in range(len(loops)):
            c = community[i]
            if c not in relabel:
                relabel[c] = len(relabel)
        community = [relabel[c] for c in community]
        membership = [community[m] for m in membership]
        if not improved or len(relabel) == len(loops):
            break
        adj, loops = _aggregate(adj, loops, community, len(relabel))

    return {v: membership[i] for i, v in enumerate(nodes)}


def _one_level(
    adj: Dict[int, Dict[int, float]],
    loops: List[float],
    resolution: float,
) -> (List[int], bool):
    """One Louvain local-moving phase.  Returns (community, any_move)."""
    n = len(loops)
    # k[i]: degree with self-loop counted twice; m: total weight.
    k = [0.0] * n
    m = 0.0
    for i in range(n):
        k[i] = sum(adj[i].values()) + 2.0 * loops[i]
        m += loops[i]
        for j, w in adj[i].items():
            if j > i:
                m += w
    if m <= 0.0:
        return list(range(n)), False

    community = list(range(n))
    comm_tot = k[:]  # Σ_tot per community (sum of member degrees)
    two_m = 2.0 * m

    any_move = False
    moved = True
    while moved:
        moved = False
        for i in range(n):
            c_old = community[i]
            # Weight from i to each neighbouring community.
            nbr_comm: Dict[int, float] = {}
            for j, w in adj[i].items():
                c = community[j]
                nbr_comm[c] = nbr_comm.get(c, 0.0) + w
            # Remove i from its community for the evaluation.
            comm_tot[c_old] -= k[i]
            norm = resolution * k[i] / two_m
            w_old = nbr_comm.get(c_old, 0.0)
            base = w_old - comm_tot[c_old] * norm
            # Deterministic min-index scan: an exact (gain, -index) argmax
            # over the neighbouring communities — no sorted() needed, the
            # exact comparison breaks ties toward the smallest label
            # independently of iteration order.  The node moves only when
            # the winner strictly improves on staying put.
            cand_c = -1
            cand_gain = 0.0
            for c, w_c in nbr_comm.items():
                if c == c_old:
                    continue
                gain = w_c - comm_tot[c] * norm
                if cand_c < 0 or gain > cand_gain or (gain == cand_gain and c < cand_c):
                    cand_gain = gain
                    cand_c = c
            best_c = c_old
            if cand_c >= 0 and cand_gain > base + _MIN_GAIN:
                best_c = cand_c
            community[i] = best_c
            comm_tot[best_c] += k[i]
            if best_c != c_old:
                moved = True
                any_move = True
    return community, any_move


def _aggregate(
    adj: Dict[int, Dict[int, float]],
    loops: List[float],
    community: List[int],
    num_comms: int,
) -> (Dict[int, Dict[int, float]], List[float]):
    """Collapse communities into super-nodes for the next level."""
    new_adj: Dict[int, Dict[int, float]] = {c: {} for c in range(num_comms)}
    new_loops = [0.0] * num_comms
    for i, row in adj.items():
        ci = community[i]
        new_loops[ci] += loops[i]
        for j, w in row.items():
            if j < i:
                continue  # handle each undirected pair once
            cj = community[j]
            if ci == cj:
                new_loops[ci] += w
            else:
                new_adj[ci][cj] = new_adj[ci].get(cj, 0.0) + w
                new_adj[cj][ci] = new_adj[cj].get(ci, 0.0) + w
    return new_adj, new_loops


def modularity(
    graph: TransactionGraph,
    partition: Dict[Node, int],
    resolution: float = 1.0,
) -> float:
    """Newman modularity of ``partition`` on ``graph``.

    Provided for tests and diagnostics; TxAllo itself optimises throughput,
    not modularity.
    """
    m = graph.total_weight
    if m <= 0:
        return 0.0
    comm_in: Dict[int, float] = {}
    comm_tot: Dict[int, float] = {}
    for v in graph.nodes():
        c = partition[v]
        loop = graph.self_loop(v)
        k_v = graph.external_strength(v) + 2.0 * loop
        comm_tot[c] = comm_tot.get(c, 0.0) + k_v
        comm_in[c] = comm_in.get(c, 0.0) + 2.0 * loop
    for u, v, w in graph.edges():
        if u != v and partition[u] == partition[v]:
            comm_in[partition[u]] = comm_in.get(partition[u], 0.0) + 2.0 * w
    two_m = 2.0 * m
    q = 0.0
    for c, tot in comm_tot.items():
        q += comm_in.get(c, 0.0) / two_m - resolution * (tot / two_m) ** 2
    return q
