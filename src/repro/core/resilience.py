"""Fault-tolerant supervision for online allocators.

The paper's deployed loop (Section V-A: A-TxAllo every τ₁ blocks,
G-TxAllo every τ₂) assumes the allocator always answers.  A real
deployment cannot: an update may raise, overrun its deadline, or the
allocator process may crash outright — and none of that is allowed to
stop block production.  :class:`ResilientAllocator` wraps any
:class:`~repro.core.allocator.OnlineAllocator` with the failure
semantics the tick loop needs:

* **Exception isolation.**  ``observe_block`` never lets the wrapped
  allocator's exception propagate into the caller.  On failure the
  block is buffered for replay and routing falls over to the *frozen
  last-known-good mapping* (plus the protocol's hash fallback for
  accounts the frozen mapping has never seen).
* **Deadline budget.**  With ``deadline_seconds`` set, an update that
  takes longer than the budget counts as a failure even though it
  completed — the supervisor backs off so a slow allocator cannot stall
  the loop.  The duration is the inner allocator's self-reported
  ``last_update_seconds`` when present (deterministic under fault
  injection, see :mod:`repro.chain.faults`), else wall clock.
* **Retry after backoff, measured in blocks.**  After a failure the
  supervisor waits ``backoff_base_blocks · 2^(consecutive_failures-1)``
  blocks (capped at ``backoff_cap_blocks``) before retrying; buffered
  blocks are then replayed in order, so the inner allocator misses no
  history.  The schedule is purely block-clocked — no wall-clock
  randomness, no jitter.
* **Circuit breaker.**  ``failure_threshold`` consecutive failures trip
  the circuit *open*: the inner allocator is not consulted at all, and
  degraded routing serves the frozen mapping.  After
  ``cooldown_blocks`` the circuit goes *half-open* and the next block
  is a probe — success replays the buffered backlog, re-closes the
  circuit and unfreezes routing; failure re-opens it for another
  cooldown.
* **Crash recovery.**  The supervisor takes a durable
  :class:`~repro.core.persistence.AllocationCheckpoint` every
  ``checkpoint_every_blocks`` healthy blocks (written to
  ``checkpoint_path`` when given); :meth:`restore` resumes a *fresh*
  controller from the last checkpoint through the existing
  ``graph=``/``initial_mapping=`` constructor seam of
  :class:`~repro.core.controller.TxAlloController`.

**The degraded-routing contract.**  Like ``shard_of`` itself, degraded
routing is deterministic and miner-reproducible: it is a pure function
of the frozen mapping and ``SHA256(address) mod k`` — two miners that
observed the same failure at the same block route every transaction
identically while the circuit is open.  ``shard_of`` stays *total and
never raises* in every state, including mid-failure: a query that
escapes the inner allocator falls back to the last checkpoint and the
hash rule.

:attr:`resilience_stats` exports the supervision counters (``failures``,
``retries``, ``deadline_overruns``, ``degraded_blocks``, ``failovers``,
``trips``, ``recoveries``, ``checkpoints``) alongside the existing
``freeze_stats``/``warm_stats``/``workspace_stats`` pass-throughs, and
:class:`~repro.chain.live.LiveShardedNetwork` surfaces them per run on
:class:`~repro.chain.live.LiveReport`.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.allocator import OnlineAllocator, hash_fallback_shard
from repro.core.graph import Node, TransactionGraph
from repro.core.persistence import AllocationCheckpoint
from repro.errors import AllocatorError, DegradedModeError, ParameterError

#: Circuit-breaker states (exposed via :attr:`ResilientAllocator.circuit_state`).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class ResilientAllocator(OnlineAllocator):
    """Supervised wrapper: any online allocator, with failure semantics.

    ``inner`` is the allocator being supervised (it stays reachable as
    :attr:`inner`, so fault injectors and tests can reach through the
    wrapper).  See the module docstring for the full state machine; the
    short version::

        healthy ──failure──▶ backing off ──N consecutive──▶ circuit OPEN
           ▲                     │                               │
           └────── success ◀── retry (block-clocked)   cooldown ─┘
           └────── success ◀────────── half-open probe ◀─────────┘
    """

    name = "resilient"

    def __init__(
        self,
        inner: OnlineAllocator,
        *,
        failure_threshold: int = 3,
        backoff_base_blocks: int = 1,
        backoff_cap_blocks: int = 8,
        cooldown_blocks: int = 5,
        deadline_seconds: Optional[float] = None,
        checkpoint_every_blocks: int = 25,
        checkpoint_path=None,
    ) -> None:
        if not isinstance(inner, OnlineAllocator):
            raise AllocatorError(
                f"ResilientAllocator supervises OnlineAllocator instances, "
                f"got {type(inner).__name__}"
            )
        for label, value in (
            ("failure_threshold", failure_threshold),
            ("backoff_base_blocks", backoff_base_blocks),
            ("backoff_cap_blocks", backoff_cap_blocks),
            ("cooldown_blocks", cooldown_blocks),
            ("checkpoint_every_blocks", checkpoint_every_blocks),
        ):
            if not isinstance(value, int) or value < 1:
                raise ParameterError(
                    f"{label} must be a positive int, got {value!r}"
                )
        if deadline_seconds is not None and not deadline_seconds > 0:
            raise ParameterError(
                f"deadline_seconds must be positive or None, got {deadline_seconds!r}"
            )
        self.inner = inner
        self.params = inner.params
        self.name = f"resilient({inner.name})"
        self._failure_threshold = failure_threshold
        self._backoff_base = backoff_base_blocks
        self._backoff_cap = backoff_cap_blocks
        self._cooldown_blocks = cooldown_blocks
        self._deadline = deadline_seconds
        self._checkpoint_every = checkpoint_every_blocks
        self._checkpoint_path = (
            Path(checkpoint_path) if checkpoint_path is not None else None
        )
        self._block_index = 0
        self._pending: List[Tuple[Tuple[Node, ...], ...]] = []
        self._failures = 0  # consecutive, resets on success
        self._retry_at = 0  # block index of the next allowed attempt
        self._state = CLOSED
        self._cooldown_until = 0
        self._frozen: Optional[Dict[Node, int]] = None
        self._stats: Dict[str, int] = {
            "failures": 0,
            "retries": 0,
            "deadline_overruns": 0,
            "degraded_blocks": 0,
            "failovers": 0,
            "trips": 0,
            "recoveries": 0,
            "checkpoints": 0,
        }
        self._checkpoint = self._make_checkpoint(block_height=0)
        self._stats["checkpoints"] += 1
        if self._checkpoint_path is not None:
            self._checkpoint.save(self._checkpoint_path)

    # ------------------------------------------------------------------
    # Observation: isolation, backoff, circuit breaker
    # ------------------------------------------------------------------
    def observe_block(self, transactions: Iterable[Sequence[Node]]):
        """Ingest one block; never raises on the inner allocator's behalf.

        Returns the inner allocator's update event when a (possibly
        replayed) observation succeeded this block, else ``None`` — the
        caller cannot tell a quiet healthy block from a buffered one
        except through :attr:`degraded` / :attr:`resilience_stats`,
        which is exactly the point.
        """
        block = tuple(tuple(accounts) for accounts in transactions)
        self._block_index += 1
        now = self._block_index
        self._pending.append(block)

        if self._state == OPEN:
            if now < self._cooldown_until:
                self._stats["degraded_blocks"] += 1
                return None
            self._state = HALF_OPEN  # this block is the probe
        elif self._frozen is not None and now < self._retry_at:
            # Backing off after a failure; buffer and serve frozen routes.
            self._stats["degraded_blocks"] += 1
            return None

        if self._frozen is not None:
            self._stats["retries"] += 1
        return self._attempt(now)

    def _attempt(self, now: int):
        """Feed every buffered block to the inner allocator, in order."""
        event = None
        while self._pending:
            block = self._pending[0]
            started = time.perf_counter()
            try:
                event = self.inner.observe_block(block)
            except Exception:  # noqa: BLE001 — isolation is the contract
                self._record_failure(now)
                return None
            # The inner allocator owns this block now; a later deadline
            # overrun must not replay it (the update *did* happen).
            self._pending.pop(0)
            elapsed = time.perf_counter() - started
            reported = getattr(self.inner, "last_update_seconds", None)
            if reported is not None:
                elapsed = reported
            if self._deadline is not None and elapsed > self._deadline:
                self._stats["deadline_overruns"] += 1
                self._record_failure(now)
                return None
        self._record_success()
        if now - self._checkpoint.block_height >= self._checkpoint_every:
            self._take_checkpoint(now)
        return event

    def _record_failure(self, now: int) -> None:
        self._stats["failures"] += 1
        self._failures += 1
        if self._frozen is None:
            self._frozen = self._safe_mapping()
            self._stats["failovers"] += 1
        if self._state == HALF_OPEN or self._failures >= self._failure_threshold:
            if self._state != OPEN:
                self._stats["trips"] += 1
            self._state = OPEN
            self._cooldown_until = now + self._cooldown_blocks
        else:
            backoff = min(
                self._backoff_base * 2 ** (self._failures - 1),
                self._backoff_cap,
            )
            self._retry_at = now + backoff

    def _record_success(self) -> None:
        self._failures = 0
        self._retry_at = 0
        self._state = CLOSED
        if self._frozen is not None:
            self._frozen = None
            self._stats["recoveries"] += 1

    # ------------------------------------------------------------------
    # Routing: total, never raises, deterministic in every state
    # ------------------------------------------------------------------
    def shard_of(self, account: Node) -> int:
        """Current shard of ``account`` — total, even mid-failure.

        Healthy: the inner allocator's answer.  Degraded: the frozen
        last-good mapping, hash fallback for unseen accounts.  Should a
        healthy query itself raise, it falls back to the last durable
        checkpoint and the hash rule rather than propagating.
        """
        if self._frozen is None:
            try:
                return self.inner.shard_of(account)
            except Exception:  # noqa: BLE001 — routing must not raise
                frozen = self._checkpoint.mapping
            shard = frozen.get(account)
        else:
            shard = self._frozen.get(account)
        if shard is not None:
            return shard
        return hash_fallback_shard(account, self.params.k)

    def mapping(self) -> Dict[Node, int]:
        if self._frozen is not None:
            return dict(self._frozen)
        return self._safe_mapping()

    def _safe_mapping(self) -> Dict[Node, int]:
        try:
            return dict(self.inner.mapping())
        except Exception:  # noqa: BLE001 — fall back to the last good state
            checkpoint = getattr(self, "_checkpoint", None)
            return dict(checkpoint.mapping) if checkpoint is not None else {}

    # ------------------------------------------------------------------
    # Checkpointing and crash recovery
    # ------------------------------------------------------------------
    def _make_checkpoint(self, block_height: int) -> AllocationCheckpoint:
        mapping = {str(a): int(s) for a, s in self._safe_mapping().items()}
        return AllocationCheckpoint(
            mapping=mapping, params=self.params, block_height=block_height
        )

    def _take_checkpoint(self, block_height: int) -> AllocationCheckpoint:
        self._checkpoint = self._make_checkpoint(block_height)
        self._stats["checkpoints"] += 1
        if self._checkpoint_path is not None:
            self._checkpoint.save(self._checkpoint_path)
        return self._checkpoint

    def checkpoint_now(self) -> AllocationCheckpoint:
        """Take (and persist, if a path is configured) a checkpoint now.

        Refuses while degraded: the frozen mapping is already the last
        good state on record, and overwriting the durable checkpoint
        with mid-outage state would poison :meth:`restore`.
        """
        if self.degraded:
            raise DegradedModeError(
                "cannot checkpoint while routing is degraded; the last good "
                "checkpoint is the recovery point"
            )
        return self._take_checkpoint(self._block_index)

    @property
    def checkpoint(self) -> AllocationCheckpoint:
        """The most recent durable checkpoint."""
        return self._checkpoint

    @classmethod
    def restore(
        cls,
        checkpoint: Union[AllocationCheckpoint, str, Path],
        **kwargs,
    ) -> "ResilientAllocator":
        """Resume a fresh supervised controller from a durable checkpoint.

        ``checkpoint`` is an :class:`AllocationCheckpoint` or a path to
        one on disk.  The resumed
        :class:`~repro.core.controller.TxAlloController` is built through
        the existing ``graph=``/``initial_mapping=`` constructor seam —
        every checkpointed account becomes a graph node placed exactly
        where the checkpoint says, so the resumed mapping's
        :func:`~repro.core.persistence.allocation_digest` equals the
        checkpoint's.  ``kwargs`` are forwarded to the wrapper.
        """
        from repro.core.controller import TxAlloController

        if not isinstance(checkpoint, AllocationCheckpoint):
            checkpoint = AllocationCheckpoint.load(checkpoint)
        graph = TransactionGraph()
        for account in checkpoint.mapping:
            graph.add_node(account)
        inner = TxAlloController(
            checkpoint.params,
            graph=graph,
            initial_mapping=dict(checkpoint.mapping),
        )
        wrapper = cls(inner, **kwargs)
        wrapper._block_index = checkpoint.block_height
        wrapper._checkpoint = checkpoint
        return wrapper

    # ------------------------------------------------------------------
    # Reporting surface
    # ------------------------------------------------------------------
    @property
    def degraded(self) -> bool:
        """True while routing serves the frozen last-good mapping."""
        return self._frozen is not None

    @property
    def circuit_state(self) -> str:
        """``"closed"``, ``"open"`` or ``"half_open"``."""
        return self._state

    @property
    def pending_blocks(self) -> int:
        """Blocks buffered for replay (0 when healthy)."""
        return len(self._pending)

    @property
    def resilience_stats(self) -> Dict[str, int]:
        """Supervision counters; see the module docstring for the keys."""
        return dict(self._stats)

    @property
    def freeze_stats(self) -> Optional[Dict[str, int]]:
        try:
            return self.inner.freeze_stats
        except Exception:  # noqa: BLE001 — reporting must not raise
            return None

    @property
    def warm_stats(self) -> Optional[Dict[str, int]]:
        stats = getattr(self.inner, "warm_stats", None)
        return dict(stats) if stats is not None else None

    @property
    def workspace_stats(self) -> Optional[Dict[str, int]]:
        stats = getattr(self.inner, "workspace_stats", None)
        return dict(stats) if stats is not None else None
