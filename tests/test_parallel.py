"""Multi-core execution layer contract suite (repro.core.parallel).

What the parallel layer *promises* (and these tests pin):

* the process-parallel evaluation grid returns records identical to a
  sequential run for any worker count, on every backend tier — the only
  thing ``workers`` may change is wall-clock;
* the shared grid state (freeze + Louvain memo + eta-independent static
  mappings) is computed exactly once in the parent, never per worker;
* platforms without ``fork`` (and ``workers=1``) silently fall back to
  the same warmed sequential path;
* the ``parallel`` backend's shard-parallel A-TxAllo is
  workers-independent, objective-gated against the flat kernel within
  the registry tolerance, and leaves the allocation's internal caches
  exact — including on adversarially overlapping windows where every
  touched node conflicts with every other;
* ``TxAlloParams.workers`` validates like every other knob and rides
  persistence.
"""

import random

import pytest

from repro import allocators
from repro.core import backends, parallel
from repro.core.allocation import Allocation
from repro.core.atxallo import a_txallo
from repro.core.controller import TxAlloController
from repro.core.graph import TransactionGraph
from repro.core.gtxallo import g_txallo
from repro.core.params import TxAlloParams
from repro.core.persistence import load_allocation, save_allocation
from repro.errors import ParameterError
from repro.eval import experiments
from tests.conftest import make_random_graph

NUMPY = backends.get_backend("parallel").available()
needs_numpy = pytest.mark.skipif(not NUMPY, reason="parallel tier needs numpy")


@pytest.fixture(scope="module")
def small_workload():
    return experiments.build_workload(scale=0.1, seed=2022)


# ----------------------------------------------------------------------
# Process-parallel evaluation grid
# ----------------------------------------------------------------------
class TestGridParity:
    GRID = dict(ks=(2, 6), etas=(2.0, 6.0), methods=("txallo", "metis", "random"))

    @pytest.mark.parametrize(
        "backend",
        ["fast", "reference"]
        + (["vector", "parallel"] if NUMPY else []),
    )
    def test_grid_records_identical_across_worker_counts(
        self, small_workload, backend
    ):
        baseline = None
        for workers in (1, 2, 4):
            records = experiments.sweep(
                small_workload, backend=backend, workers=workers, **self.GRID
            )
            canon = parallel.canonical_records(records)
            if baseline is None:
                baseline = canon
            else:
                assert canon == baseline, f"{backend} workers={workers}"

    def test_online_methods_ride_the_pool_too(self, small_workload):
        grid = dict(ks=(2, 4), etas=(2.0,), methods=("shard_scheduler",))
        seq = experiments.sweep(small_workload, workers=1, **grid)
        par = experiments.sweep(small_workload, workers=2, **grid)
        assert parallel.canonical_records(par) == parallel.canonical_records(seq)

    def test_figure4_distributions_identical(self, small_workload):
        seq = experiments.figure4(small_workload, k=4, eta=2.0, workers=1)
        par = experiments.figure4(small_workload, k=4, eta=2.0, workers=2)
        assert par.distributions == seq.distributions

    def test_record_order_is_canonical_cell_order(self, small_workload):
        records = experiments.sweep(
            small_workload, workers=2, **self.GRID
        )
        cells = [
            (m, k, eta)
            for eta in self.GRID["etas"]
            for k in self.GRID["ks"]
            for m in self.GRID["methods"]
        ]
        assert [(r.method, r.k, r.eta) for r in records] == cells


class TestGridFallbacks:
    def test_no_fork_platform_falls_back_inline(self, small_workload, monkeypatch):
        grid = dict(ks=(2,), etas=(2.0,), methods=("txallo", "metis"))
        seq = experiments.sweep(small_workload, workers=1, **grid)
        monkeypatch.setattr(parallel, "fork_available", lambda: False)

        def boom(*args, **kwargs):  # the pool must not be touched at all
            raise AssertionError("ProcessPoolExecutor used without fork")

        monkeypatch.setattr(parallel, "ProcessPoolExecutor", boom)
        par = experiments.sweep(small_workload, workers=4, **grid)
        assert parallel.canonical_records(par) == parallel.canonical_records(seq)

    def test_effective_workers_clamps(self):
        assert parallel.effective_workers(8, 3) == 3
        assert parallel.effective_workers(0, 3) == 1
        assert parallel.effective_workers(2, 0) == 1


class TestSharedStateComputedOnce:
    def test_static_mappings_computed_once_per_name_k(
        self, small_workload, tmp_path, monkeypatch
    ):
        """The _MappingCache satellite: at any worker count, an
        eta-independent allocator's ``allocate`` runs exactly once per
        (name, k) — in the parent — instead of once per worker process.
        The probe allocator appends to a file so forked children's calls
        are visible here."""
        from repro.core.allocator import FunctionAllocator

        count_file = tmp_path / "allocate_calls.log"
        count_file.write_text("")

        def counting_mapping(graph, params):
            with count_file.open("a") as fh:
                fh.write(f"k={params.k}\n")
            return {a: i % params.k for i, a in enumerate(graph.nodes_sorted())}

        allocators.register(
            "count_probe",
            lambda: FunctionAllocator("count_probe", counting_mapping),
            kind="static",
            eta_independent=True,
        )
        try:
            for workers in (1, 2, 4):
                count_file.write_text("")
                experiments.sweep(
                    small_workload,
                    ks=(2, 4),
                    etas=(2.0, 6.0, 10.0),
                    methods=("count_probe",),
                    workers=workers,
                )
                calls = sorted(count_file.read_text().split())
                assert calls == ["k=2", "k=4"], (workers, calls)
        finally:
            allocators.unregister("count_probe")

    def test_parent_freeze_is_shared(self, small_workload):
        graph = small_workload.graph
        before = graph.freeze_stats["full"] + graph.freeze_stats["delta"]
        experiments.sweep(
            small_workload, ks=(2, 4), etas=(2.0, 6.0), methods=("txallo",),
            workers=2,
        )
        after = graph.freeze_stats["full"] + graph.freeze_stats["delta"]
        # At most one (re)freeze in the parent; workers inherit it.
        assert after - before <= 1


# ----------------------------------------------------------------------
# Shard-parallel A-TxAllo (the "parallel" backend tier)
# ----------------------------------------------------------------------
def _controller_objectives(blocks, k, tau1, backend, workers):
    # Finite lam = |T|/k so the adaptive sweeps chase real gains — with
    # the uncapped default every join/leave pair cancels exactly.
    params = TxAlloParams.with_capacity_for(
        sum(len(b) for b in blocks),
        k=k,
        eta=2.0,
        tau1=tau1,
        tau2=10**6,
        backend=backend,
        workers=workers,
    )
    controller = TxAlloController(params)
    batched = 0
    for block in blocks:
        event = controller.observe_block(block)
        if event is not None and parallel.LAST_RUN_STATS.get("batched"):
            batched += 1
    return controller.allocation.total_throughput(), controller.mapping(), batched


def _random_blocks(seed, accounts=260, blocks=12, txs=60):
    rng = random.Random(seed)
    pool = [f"acc{i:03d}" for i in range(accounts)]
    out = []
    for _ in range(blocks):
        out.append(
            [tuple(rng.sample(pool, rng.choice([2, 2, 3]))) for _ in range(txs)]
        )
    return out


@needs_numpy
class TestShardParallelATxAllo:
    @pytest.mark.parametrize("seed", (1, 2, 3))
    def test_interleaving_objective_and_workers_parity(self, seed):
        """Random ingest/adaptive interleavings: the parallel tier stays
        within the registry objective tolerance of the flat kernel and
        is workers-independent, with the batched path actually taken."""
        blocks = _random_blocks(seed)
        base_obj, _, _ = _controller_objectives(blocks, 8, 2, "vector", 1)
        par1_obj, par1_map, batched1 = _controller_objectives(
            blocks, 8, 2, "parallel", 1
        )
        par4_obj, par4_map, batched4 = _controller_objectives(
            blocks, 8, 2, "parallel", 4
        )
        tolerance = backends.get_backend("parallel").tolerance
        assert par1_obj >= (1.0 - tolerance) * base_obj
        assert par4_obj >= (1.0 - tolerance) * base_obj
        assert par1_map == par4_map
        assert batched1 > 0 and batched4 > 0

    def test_adversarially_overlapping_window(self):
        """Every touched node neighbours every other (one dense clique
        spanning the shards): the conflict pass must still converge to
        an exact, internally consistent allocation."""
        graph = make_random_graph(num_accounts=120, num_transactions=600, seed=7)
        params = TxAlloParams.with_capacity_for(
            600, k=4, eta=2.0, backend="parallel", workers=4
        )
        good = g_txallo(graph, params).allocation
        rng = random.Random(13)
        clique = sorted(rng.sample(sorted(graph.nodes()), 80))
        for i in range(len(clique) - 1):
            tx = (clique[i], clique[i + 1], clique[(i + 40) % len(clique)])
            graph.add_transaction(tx)
        # Scramble the clique across the shards so the window starts far
        # from the fixed point — every touched node then has gains, and
        # every applied move conflicts with the whole window.
        mapping = good.mapping()
        for i, v in enumerate(clique):
            mapping[v] = i % params.k
        alloc = Allocation.from_partition(
            graph, params, mapping, num_communities=good.num_communities
        )
        result = a_txallo(alloc, clique)
        assert result.swept_nodes == len(clique)
        assert parallel.LAST_RUN_STATS.get("batched") is True
        # The conflict machinery really fired on this window.
        assert parallel.LAST_RUN_STATS["conflict_slots"] > 0
        # Internal caches stay exact: rebuilding from the final mapping
        # reproduces sigma/lam_hat to float tolerance.
        rebuilt = Allocation.from_partition(
            graph, params, alloc.mapping(), num_communities=alloc.num_communities
        )
        for got, want in zip(alloc.sigma, rebuilt.sigma):
            assert got == pytest.approx(want, abs=1e-6)
        for got, want in zip(alloc.lam_hat, rebuilt.lam_hat):
            assert got == pytest.approx(want, abs=1e-6)

    def test_small_windows_delegate_to_flat_byte_identically(self):
        graph = make_random_graph(seed=21)
        touched = sorted(graph.nodes())[: parallel.MIN_PARALLEL_TOUCHED - 4]
        params_par = TxAlloParams.with_capacity_for(
            400, k=4, eta=2.0, backend="parallel", workers=4
        )
        params_fast = params_par.replace(backend="fast")
        alloc_par = g_txallo(graph, params_fast).allocation
        alloc_fast = g_txallo(graph, params_fast).allocation
        alloc_par.params = params_par
        a_txallo(alloc_par, touched)
        assert parallel.LAST_RUN_STATS == {
            "batched": False,
            "window": len(touched),
        }
        a_txallo(alloc_fast, touched)
        assert alloc_par.mapping() == alloc_fast.mapping()

    def test_workspace_rides_the_parallel_tier(self):
        """uses_workspace=True: the controller's workspace serves the
        batched kernel (no per-window freeze) and survives it."""
        blocks = _random_blocks(5, blocks=8)
        params = TxAlloParams(
            k=6, eta=2.0, tau1=2, tau2=10**6, backend="parallel", workers=2
        )
        controller = TxAlloController(params)
        for block in blocks:
            controller.observe_block(block)
        stats = controller.workspace_stats
        assert stats["runs"] >= 3
        assert stats["extends"] >= 1


# ----------------------------------------------------------------------
# Params / persistence / registry plumbing
# ----------------------------------------------------------------------
class TestWorkersKnob:
    def test_default_is_one(self):
        assert TxAlloParams(k=4).workers == 1

    @pytest.mark.parametrize("bad", (0, -1, 1.5, "2"))
    def test_invalid_workers_rejected(self, bad):
        with pytest.raises(ParameterError):
            TxAlloParams(k=4, workers=bad)

    def test_with_capacity_for_plumbs_workers(self):
        params = TxAlloParams.with_capacity_for(1000, k=4, workers=3)
        assert params.workers == 3

    def test_persistence_roundtrip_keeps_workers(self, tmp_path):
        graph = make_random_graph(seed=9)
        params = TxAlloParams(k=4, workers=2)
        alloc = g_txallo(graph, params).allocation
        path = tmp_path / "alloc.json"
        save_allocation(path, alloc.mapping(), params)
        _, loaded, _ = load_allocation(path)
        assert loaded.workers == 2

    def test_parallel_spec_is_workers_aware(self):
        spec = backends.get_backend("parallel")
        assert spec.workers_aware
        assert spec.uses_workspace
        assert spec.fallback == "vector"

    def test_other_specs_are_not(self):
        for name in ("reference", "fast", "turbo", "vector"):
            assert not backends.get_backend(name).workers_aware


class TestBlasPinning:
    def test_pin_sets_all_knobs_and_reports(self, monkeypatch):
        for var in parallel.BLAS_ENV_VARS:
            monkeypatch.delenv(var, raising=False)
        assert not parallel.blas_threads_pinned()
        pins = parallel.pin_blas_threads()
        assert parallel.blas_threads_pinned()
        assert set(pins) == set(parallel.BLAS_ENV_VARS)
        assert all(v == "1" for v in pins.values())

    def test_pin_respects_explicit_user_setting(self, monkeypatch):
        monkeypatch.setenv("OMP_NUM_THREADS", "7")
        pins = parallel.pin_blas_threads()
        assert pins["OMP_NUM_THREADS"] == "7"
