"""Tests for the ethereum-etl loaders and the block stream."""

import json

import pytest

from repro.chain.types import Block, Transaction
from repro.data.loader import (
    group_into_blocks,
    load_transactions_csv,
    load_transactions_jsonl,
)
from repro.data.stream import BlockStream
from repro.errors import DataError

CSV_HEADER = "hash,from_address,to_address,block_number\n"


def write_csv(tmp_path, rows, header=CSV_HEADER):
    path = tmp_path / "txs.csv"
    path.write_text(header + "".join(rows))
    return path


class TestCsvLoader:
    def test_basic_rows(self, tmp_path):
        path = write_csv(
            tmp_path,
            ["0xh1,0xA,0xB,100\n", "0xh2,0xC,0xD,100\n", "0xh3,0xA,0xC,101\n"],
        )
        rows = list(load_transactions_csv(path))
        assert len(rows) == 3
        height, tx = rows[0]
        assert height == 100
        assert tx.inputs == ("0xa",) and tx.outputs == ("0xb",)
        assert tx.tx_id == "0xh1"

    def test_contract_creation_becomes_self_loop(self, tmp_path):
        path = write_csv(tmp_path, ["0xh1,0xA,,100\n"])
        _, tx = next(load_transactions_csv(path))
        assert tx.is_self_loop

    def test_missing_sender_rejected(self, tmp_path):
        path = write_csv(tmp_path, ["0xh1,,0xB,100\n"])
        with pytest.raises(DataError):
            list(load_transactions_csv(path))

    def test_bad_block_number_rejected(self, tmp_path):
        path = write_csv(tmp_path, ["0xh1,0xA,0xB,xyz\n"])
        with pytest.raises(DataError):
            list(load_transactions_csv(path))

    def test_missing_columns_rejected(self, tmp_path):
        path = write_csv(tmp_path, ["0xh1,0xA\n"], header="hash,from_address\n")
        with pytest.raises(DataError):
            list(load_transactions_csv(path))

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(DataError):
            list(load_transactions_csv(path))

    def test_addresses_normalised_lowercase(self, tmp_path):
        path = write_csv(tmp_path, ["0xh1,0xAB,0xCD,1\n"])
        _, tx = next(load_transactions_csv(path))
        assert tx.inputs == ("0xab",)


class TestJsonlLoader:
    def test_basic_rows(self, tmp_path):
        path = tmp_path / "txs.jsonl"
        rows = [
            {"hash": "0x1", "from_address": "0xa", "to_address": "0xb", "block_number": 7},
            {"hash": "0x2", "from_address": "0xc", "to_address": None, "block_number": 8},
        ]
        path.write_text("\n".join(json.dumps(r) for r in rows) + "\n\n")
        loaded = list(load_transactions_jsonl(path))
        assert len(loaded) == 2
        assert loaded[1][1].is_self_loop

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "txs.jsonl"
        path.write_text("{not json}\n")
        with pytest.raises(DataError):
            list(load_transactions_jsonl(path))

    def test_non_object_line_rejected(self, tmp_path):
        path = tmp_path / "txs.jsonl"
        path.write_text("[1, 2]\n")
        with pytest.raises(DataError):
            list(load_transactions_jsonl(path))


class TestGrouping:
    def rows(self):
        return [
            (100, Transaction.transfer("a", "b")),
            (100, Transaction.transfer("c", "d")),
            (102, Transaction.transfer("a", "c")),
        ]

    def test_groups_by_height(self):
        blocks = group_into_blocks(iter(self.rows()))
        assert [len(b) for b in blocks] == [2, 1]
        assert [b.height for b in blocks] == [0, 1]

    def test_blocks_linked(self):
        blocks = group_into_blocks(iter(self.rows()))
        assert blocks[1].parent_hash == blocks[0].block_hash

    def test_out_of_order_rejected(self):
        rows = [
            (100, Transaction.transfer("a", "b")),
            (99, Transaction.transfer("c", "d")),
        ]
        with pytest.raises(DataError):
            group_into_blocks(iter(rows))

    def test_empty_input(self):
        assert group_into_blocks(iter([])) == []


def make_blocks(n=10, per_block=3):
    blocks = []
    parent = ""
    for h in range(n):
        txs = tuple(
            Transaction.transfer(f"s{h}_{i}", f"r{h}_{i}") for i in range(per_block)
        )
        block = Block(height=h, transactions=txs, parent_hash=parent)
        blocks.append(block)
        parent = block.block_hash
    return blocks


class TestBlockStream:
    def test_len_and_tx_count(self):
        stream = BlockStream(make_blocks(10, 3))
        assert len(stream) == 10
        assert stream.num_transactions == 30

    def test_out_of_order_rejected(self):
        blocks = make_blocks(3)
        with pytest.raises(DataError):
            BlockStream([blocks[1], blocks[0]])

    def test_split_ratio(self):
        stream = BlockStream(make_blocks(10))
        train, evaluation = stream.split(0.9)
        assert len(train) == 9
        assert len(evaluation) == 1

    def test_split_never_empty_sides(self):
        stream = BlockStream(make_blocks(2))
        train, evaluation = stream.split(0.99)
        assert len(train) == 1 and len(evaluation) == 1

    def test_invalid_split(self):
        stream = BlockStream(make_blocks(4))
        with pytest.raises(DataError):
            stream.split(1.5)

    def test_windows(self):
        stream = BlockStream(make_blocks(10))
        windows = list(stream.windows(3))
        assert [len(w) for w in windows] == [3, 3, 3, 1]

    def test_invalid_window(self):
        with pytest.raises(DataError):
            list(BlockStream(make_blocks(3)).windows(0))

    def test_slicing_returns_stream(self):
        stream = BlockStream(make_blocks(10))
        assert isinstance(stream[2:5], BlockStream)
        assert len(stream[2:5]) == 3
        assert stream[0].height == 0

    def test_account_sets_sorted(self):
        stream = BlockStream(make_blocks(2))
        for accounts in stream.account_sets():
            assert list(accounts) == sorted(accounts)
