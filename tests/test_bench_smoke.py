"""Fast smoke test for the delta-freeze perf plumbing.

Runs ``benchmarks/bench_delta_freeze.py`` end-to-end at a tiny scale and
asserts the run table regenerates and the incremental path was actually
exercised — so the benchmark (and the ``BENCH_delta.json`` trajectory
later PRs gate against) cannot silently rot.  The ≥2x speedup gate
itself only applies at the benchmark's own scale, not here.
"""

import importlib.util
import json
from pathlib import Path

BENCH_PATH = (
    Path(__file__).resolve().parent.parent / "benchmarks" / "bench_delta_freeze.py"
)


def _load_bench_module():
    spec = importlib.util.spec_from_file_location("bench_delta_freeze", BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_bench_delta_regenerates_and_exercises_delta_path(tmp_path):
    bench = _load_bench_module()
    out_path = tmp_path / "BENCH_delta.json"
    # run_bench itself asserts full-vs-delta parity (same mapping, same
    # caches, same events) and that at least one incremental freeze ran.
    payload = bench.run_bench(scale=0.05, out_path=out_path)

    assert out_path.exists()
    on_disk = json.loads(out_path.read_text())
    assert on_disk == payload

    for key in (
        "scale",
        "n_nodes",
        "n_edges",
        "stream_blocks",
        "full_loop_seconds",
        "delta_loop_seconds",
        "speedup",
        "full_freeze_stats",
        "delta_freeze_stats",
        "frontier_freeze_ms",
        "full_freeze_ms",
    ):
        assert key in payload, key

    assert payload["delta_freeze_stats"]["delta"] > 0
    assert payload["full_freeze_stats"]["delta"] == 0
    assert payload["delta_loop_seconds"] > 0
    assert set(payload["frontier_freeze_ms"]) == {"8", "32", "128"}


def test_committed_run_table_is_current():
    """The checked-in BENCH_delta.json must match the bench's schema, so
    the perf trajectory stays comparable across PRs."""
    committed = BENCH_PATH.parent / "BENCH_delta.json"
    assert committed.exists(), "run benchmarks/bench_delta_freeze.py to regenerate"
    payload = json.loads(committed.read_text())
    assert payload["speedup"] >= 2.0
    assert payload["delta_freeze_stats"]["delta"] > 0
