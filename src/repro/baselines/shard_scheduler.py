"""Shard Scheduler — the transaction-level baseline (Krol et al., AFT'21).

Unlike the graph-based methods, Shard Scheduler decides placement *online*:
when a transaction arrives, its accounts may migrate to the least-loaded
involved shard, subject to a load buffer.  Because load is charged at
processing time, even a hyper-active account's traffic is smeared across
shards as the account keeps migrating — which is why this baseline wins on
workload balance and worst-case latency in the paper (Figs. 3, 4c, 7)
while paying with a mediocre cross-shard ratio and a per-transaction cost
that dwarfs the graph methods' runtime (Fig. 8).

The paper's comparison sets "the same capacity and the buffer ratio as 1"
(Section VI-B1); those are our defaults.

Implementation notes
--------------------
* A brand-new account goes to the globally least-loaded shard.
* For a transaction whose accounts are spread over several shards, the
  scheduler tries to gather them in the least-loaded involved shard; an
  account migrates only if the destination's load stays within
  ``buffer_ratio x`` the current average load (the migration criterion).
* Loads are charged after placement: 1 per involved shard for an
  intra-shard transaction, ``η`` per involved shard otherwise, matching
  the workload model of Section III-A.
* Everything is deterministic: ties break toward the smallest shard id.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.core.allocation import capped_throughput
from repro.core.graph import Node
from repro.core.params import TxAlloParams
from repro.errors import ParameterError


@dataclasses.dataclass
class SchedulerResult:
    """Online run outcome: final mapping plus accumulated online metrics."""

    mapping: Dict[Node, int]
    shard_loads: Tuple[float, ...]
    shard_lam_hat: Tuple[float, ...]
    num_transactions: int
    num_cross_shard: int
    num_migrations: int

    @property
    def cross_shard_ratio(self) -> float:
        if self.num_transactions == 0:
            return 0.0
        return self.num_cross_shard / self.num_transactions

    def throughput(self, lam: float) -> float:
        """Capacity-capped system throughput over the accumulated loads."""
        return sum(
            capped_throughput(s, lh, lam)
            for s, lh in zip(self.shard_loads, self.shard_lam_hat)
        )


class ShardScheduler:
    """Stateful online allocator; feed transactions chronologically."""

    def __init__(self, params: TxAlloParams, *, buffer_ratio: float = 1.0) -> None:
        if buffer_ratio <= 0:
            raise ParameterError(f"buffer_ratio must be positive, got {buffer_ratio!r}")
        self.params = params
        self.buffer_ratio = buffer_ratio
        self.mapping: Dict[Node, int] = {}
        self.loads: List[float] = [0.0] * params.k
        self.lam_hat: List[float] = [0.0] * params.k
        self.num_transactions = 0
        self.num_cross_shard = 0
        self.num_migrations = 0

    # ------------------------------------------------------------------
    def _least_loaded(self) -> int:
        loads = self.loads
        return min(range(len(loads)), key=lambda i: (loads[i], i))

    # ------------------------------------------------------------------
    def observe(self, accounts: Sequence[Node]) -> bool:
        """Place/migrate the accounts of one transaction; charge its load.

        Returns True when the transaction ends up cross-shard.
        """
        unique = sorted(set(accounts))
        known = [a for a in unique if a in self.mapping]
        new = [a for a in unique if a not in self.mapping]

        if not known:
            target = self._least_loaded()
        else:
            involved = sorted({self.mapping[a] for a in known})
            target = min(involved, key=lambda i: (self.loads[i], i))
            if len(involved) > 1:
                # Migration criterion: an account abandons its shard only
                # when that shard is overloaded relative to the buffer and
                # the destination can take it — the scheduler relieves
                # hot-spots rather than performing global clustering
                # (which is the graph methods' job).
                k = self.params.k
                mean = sum(self.loads) / k
                for a in known:
                    src = self.mapping[a]
                    if (
                        src != target
                        and self.loads[src] > self.buffer_ratio * mean
                        and self.loads[target] <= self.buffer_ratio * mean
                    ):
                        self.mapping[a] = target
                        self.num_migrations += 1
        for a in new:
            self.mapping[a] = target

        shards = {self.mapping[a] for a in unique}
        m = len(shards)
        self.num_transactions += 1
        if m == 1:
            (i,) = shards
            self.loads[i] += 1.0
            self.lam_hat[i] += 1.0
            return False
        self.num_cross_shard += 1
        eta = self.params.eta
        share = 1.0 / m
        for i in shards:
            self.loads[i] += eta
            self.lam_hat[i] += share
        return True

    def run(self, transactions: Iterable[Sequence[Node]]) -> SchedulerResult:
        """Process a whole chronological transaction stream."""
        for accounts in transactions:
            self.observe(accounts)
        return self.result()

    def result(self) -> SchedulerResult:
        return SchedulerResult(
            mapping=dict(self.mapping),
            shard_loads=tuple(self.loads),
            shard_lam_hat=tuple(self.lam_hat),
            num_transactions=self.num_transactions,
            num_cross_shard=self.num_cross_shard,
            num_migrations=self.num_migrations,
        )


def shard_scheduler_partition(
    transactions: Iterable[Sequence[Node]],
    params: TxAlloParams,
    *,
    buffer_ratio: float = 1.0,
) -> SchedulerResult:
    """Convenience one-shot run over a transaction stream."""
    return ShardScheduler(params, buffer_ratio=buffer_ratio).run(transactions)
