"""Engine-backend strategy registry (repro.core.backends).

Covers the registry's four jobs end to end: the one canonical
unknown-backend error shared by every dispatch surface, checkpoint
round-trips carrying backend names (including unregistered ones
degrading to DataError), the optional-dependency fallback walk when
numpy is absent, extensibility (a throwaway fourth tier dispatching
through the same public entry points), and the numpy vector tier's
objective-gated contract against the fast backend.
"""

from __future__ import annotations

import json
import re
import sys
import warnings

import pytest

from repro.core import backends
from repro.core.atxallo import a_txallo
from repro.core.gtxallo import g_txallo
from repro.core.louvain import louvain_partition
from repro.core.params import TxAlloParams
from repro.core.persistence import load_allocation, save_allocation
from repro.errors import DataError, ParameterError
from tests.conftest import make_random_graph

HAVE_NUMPY = backends.numpy_available()


def _canonical_unknown(name):
    return re.escape(
        f"unknown backend {name!r}, available: [{', '.join(backends.names())}]"
    )


class TestCanonicalUnknownBackendError:
    """Satellite 1: every dispatcher raises the one registry message."""

    def test_params_validation(self):
        with pytest.raises(ParameterError, match=_canonical_unknown("warp")):
            TxAlloParams(k=2, backend="warp")

    def test_louvain_partition(self):
        g = make_random_graph(seed=8)
        with pytest.raises(ParameterError, match=_canonical_unknown("warp")):
            louvain_partition(g, backend="warp")

    def test_g_txallo_override(self):
        g = make_random_graph(seed=8)
        params = TxAlloParams.with_capacity_for(400, k=3)
        with pytest.raises(ParameterError, match=_canonical_unknown("warp")):
            g_txallo(g, params, backend="warp")

    def test_a_txallo_override(self):
        g = make_random_graph(seed=8)
        params = TxAlloParams.with_capacity_for(400, k=3)
        alloc = g_txallo(g, params).allocation
        with pytest.raises(ParameterError, match=_canonical_unknown("warp")):
            a_txallo(alloc, [], backend="warp")

    def test_get_backend_direct(self):
        with pytest.raises(ParameterError, match=_canonical_unknown("warp")):
            backends.get_backend("warp")


class TestPersistenceRoundTrip:
    """Satellite 2: backend names survive checkpoints; junk degrades."""

    def test_vector_backend_round_trips(self, tmp_path):
        g = make_random_graph(seed=11)
        params = TxAlloParams.with_capacity_for(400, k=4, backend="vector")
        mapping = g_txallo(g, params, backend="fast").allocation.mapping()
        path = tmp_path / "ckpt.json"
        save_allocation(path, mapping, params, block_height=7)
        loaded_mapping, loaded_params, height = load_allocation(path)
        assert loaded_mapping == mapping
        assert loaded_params.backend == "vector"
        assert height == 7

    def test_unregistered_backend_raises_dataerror(self, tmp_path):
        """A checkpoint naming a backend this build doesn't register is
        malformed *data*, not a KeyError escaping the loader."""
        g = make_random_graph(seed=11)
        params = TxAlloParams.with_capacity_for(400, k=4)
        mapping = g_txallo(g, params).allocation.mapping()
        path = tmp_path / "ckpt.json"
        save_allocation(path, mapping, params)
        payload = json.loads(path.read_text())
        payload["params"]["backend"] = "from-the-future"
        path.write_text(json.dumps(payload))
        with pytest.raises(DataError, match="malformed checkpoint"):
            load_allocation(path)


class TestNumpyAbsentFallback:
    """Satellite 3: without numpy the vector tier degrades to fast."""

    @pytest.fixture
    def no_numpy(self, monkeypatch):
        # None in sys.modules makes ``import numpy`` raise ImportError,
        # which is exactly what the availability predicate probes.
        monkeypatch.setitem(sys.modules, "numpy", None)
        backends.reset_fallback_warnings()
        yield
        backends.reset_fallback_warnings()

    def test_resolves_to_fast_with_one_warning(self, no_numpy):
        assert not backends.numpy_available()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            spec = backends.resolve_backend("vector")
            again = backends.resolve_backend("vector")
        assert spec.name == "fast"
        assert again.name == "fast"
        fallback_warnings = [
            w for w in caught if issubclass(w.category, RuntimeWarning)
        ]
        assert len(fallback_warnings) == 1, "fallback must warn exactly once"
        assert "falling back to 'fast'" in str(fallback_warnings[0].message)

    def test_results_identical_to_fast(self, no_numpy):
        g_vec = make_random_graph(seed=21)
        g_fast = make_random_graph(seed=21)
        params = TxAlloParams.with_capacity_for(400, k=4, backend="vector")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            vec = g_txallo(g_vec, params)
        fast = g_txallo(g_fast, params, backend="fast")
        assert vec.allocation.mapping() == fast.allocation.mapping()
        assert vec.allocation.sigma == fast.allocation.sigma
        assert vec.allocation.lam_hat == fast.allocation.lam_hat
        assert (vec.sweeps, vec.moves) == (fast.sweeps, fast.moves)

    def test_unavailable_without_fallback_raises(self):
        spec = backends.BackendSpec(
            name="doomed",
            description="always unavailable, no fallback",
            parity=backends.BYTE_IDENTICAL,
            louvain_kernel=lambda *a: None,
            gtxallo_kernel=lambda *a: None,
            atxallo_kernel=lambda *a: None,
            available=lambda: False,
        )
        backends.register_backend(spec)
        try:
            with pytest.raises(ParameterError, match="declares no fallback"):
                backends.resolve_backend("doomed")
        finally:
            backends.unregister_backend("doomed")


class TestRegistryExtensibility:
    """Satellite 6: a fourth tier is one register_backend call."""

    @pytest.fixture
    def dummy_backend(self):
        calls = {"louvain": 0, "gtxallo": 0, "atxallo": 0}
        fast = backends.get_backend("fast")

        def louvain(graph, max_levels, resolution):
            calls["louvain"] += 1
            return fast.louvain_kernel(graph, max_levels, resolution)

        def gtxallo(graph, params, initial_partition, node_order):
            calls["gtxallo"] += 1
            return fast.gtxallo_kernel(graph, params, initial_partition, node_order)

        def atxallo(alloc, touched, epsilon, workspace):
            calls["atxallo"] += 1
            return fast.atxallo_kernel(alloc, touched, epsilon, workspace)

        backends.register_backend(backends.BackendSpec(
            name="dummy",
            description="fast kernels behind a call counter (test tier)",
            parity=backends.BYTE_IDENTICAL,
            louvain_kernel=louvain,
            gtxallo_kernel=gtxallo,
            atxallo_kernel=atxallo,
        ))
        try:
            yield calls
        finally:
            backends.unregister_backend("dummy")

    def test_dispatches_through_public_entry_points(self, dummy_backend):
        g = make_random_graph(seed=8)
        assert "dummy" in backends.names()
        params = TxAlloParams.with_capacity_for(400, k=3, backend="dummy")
        part = louvain_partition(g, backend="dummy")
        result = g_txallo(g, params)
        a_txallo(result.allocation, [], backend="dummy")
        assert dummy_backend == {"louvain": 1, "gtxallo": 1, "atxallo": 1}
        assert part == louvain_partition(g, backend="fast")
        fast = g_txallo(g, params, backend="fast")
        assert result.allocation.mapping() == fast.allocation.mapping()

    def test_cli_choices_follow_the_registry(self, dummy_backend):
        from repro.cli import build_parser

        args = build_parser().parse_args(["fig2", "--backend", "dummy"])
        assert args.backend == "dummy"

    def test_duplicate_registration_rejected(self, dummy_backend):
        with pytest.raises(ParameterError, match="already registered"):
            backends.register_backend(backends.get_backend("dummy"))

    def test_bad_parity_rejected(self):
        with pytest.raises(ParameterError, match="parity"):
            backends.register_backend(backends.BackendSpec(
                name="sloppy",
                description="",
                parity="vibes",
                louvain_kernel=lambda *a: None,
                gtxallo_kernel=lambda *a: None,
                atxallo_kernel=lambda *a: None,
            ))


@pytest.mark.skipif(not HAVE_NUMPY, reason="numpy unavailable (repro[vector])")
class TestVectorBackend:
    """The numpy tier's objective-gated contract on the true vector path."""

    @pytest.fixture(autouse=True)
    def force_vector_path(self, monkeypatch):
        # Below the crossover the vector tier delegates wholesale to the
        # flat engine; pin it to 0 so these small graphs exercise the
        # batched numpy sweeps themselves.
        import repro.core.vector as vector

        monkeypatch.setattr(vector, "MIN_VECTOR_NODES", 0)

    @pytest.mark.parametrize("seed", (3, 8, 11, 21))
    @pytest.mark.parametrize("k,eta", ((2, 2.0), (4, 2.0), (6, 6.0)))
    def test_objective_within_tolerance_of_fast(self, seed, k, eta):
        g_vec = make_random_graph(seed=seed)
        g_fast = make_random_graph(seed=seed)
        params = TxAlloParams.with_capacity_for(400, k=k, eta=eta, backend="vector")
        vec = g_txallo(g_vec, params)
        fast = g_txallo(g_fast, params, backend="fast")
        tolerance = backends.get_backend("vector").tolerance
        assert vec.allocation.total_throughput() >= (
            (1.0 - tolerance) * fast.allocation.total_throughput()
        )

    def test_deterministic(self):
        runs = []
        for _ in range(2):
            g = make_random_graph(seed=11)
            params = TxAlloParams.with_capacity_for(400, k=4, backend="vector")
            runs.append(g_txallo(g, params))
        assert runs[0].allocation.mapping() == runs[1].allocation.mapping()
        assert runs[0].allocation.sigma == runs[1].allocation.sigma
        assert (runs[0].sweeps, runs[0].moves) == (runs[1].sweeps, runs[1].moves)

    def test_caches_exact(self):
        g = make_random_graph(seed=3)
        params = TxAlloParams.with_capacity_for(400, k=4, backend="vector")
        alloc = g_txallo(g, params).allocation
        alloc.validate(check_caches=True)

    def test_louvain_vector_is_a_valid_partition(self):
        g = make_random_graph(seed=8)
        part = louvain_partition(g, backend="vector")
        assert set(part) == set(g.nodes())
        labels = sorted(set(part.values()))
        assert labels == list(range(len(labels)))
        assert part == louvain_partition(g, backend="vector")

    def test_atxallo_byte_identical_to_fast(self):
        """The vector tier registers the flat A-TxAllo kernel: given the
        same allocation, adaptive sweeps match the fast backend exactly."""
        import random

        results = {}
        for backend in ("fast", "vector"):
            g = make_random_graph(seed=7)
            params = TxAlloParams.with_capacity_for(400, k=4, backend="fast")
            alloc = g_txallo(g, params).allocation
            rng = random.Random(7)
            nodes = list(g.nodes())
            txs = [tuple(rng.sample(nodes, 2)) for _ in range(40)]
            txs += [(f"new_{i}", rng.choice(nodes)) for i in range(5)]
            touched = set()
            for accounts in txs:
                unique = set(accounts)
                g.add_transaction(unique)
                alloc.ingest_transaction(unique)
                touched.update(unique)
            result = a_txallo(alloc, touched, backend=backend)
            results[backend] = (
                alloc.mapping(),
                alloc.sigma,
                alloc.lam_hat,
                (result.new_nodes, result.swept_nodes, result.sweeps, result.moves),
            )
        assert results["fast"] == results["vector"]

    def test_controller_runs_on_vector_backend(self):
        import random

        from repro.core.controller import TxAlloController

        rng = random.Random(5)
        accounts = [f"acc{i:03d}" for i in range(40)]
        seed_txs = [tuple(rng.sample(accounts, 2)) for _ in range(120)]
        params = TxAlloParams.with_capacity_for(
            200, k=3, backend="vector", tau1=2, tau2=4
        )
        controller = TxAlloController(params, seed_transactions=seed_txs)
        for _ in range(5):
            block = [tuple(rng.sample(accounts, 2)) for _ in range(10)]
            controller.observe_block(block)
        controller.allocation.validate(check_caches=True)
        assert controller.adaptive_events, "tau1 cadence never fired"
        assert controller.global_events, "tau2 cadence never fired"
