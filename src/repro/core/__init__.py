"""Core TxAllo machinery: transaction graph, metrics and the two algorithms.

Besides the graph/objective/algorithm stack, this package owns the
**unified allocator protocol** (:mod:`repro.core.allocator`): every
allocation method — TxAllo itself and every baseline — is either a
:class:`StaticAllocator` (``allocate(graph, params) -> mapping``, plus a
deterministic ``default_shard`` fallback) or an :class:`OnlineAllocator`
(``observe_block(block)`` / total ``shard_of(account)`` / ``mapping()``,
with ``run_stream`` for processing-time analytic accounting).  The chain
simulators, the figure runners and the CLI all dispatch through that
protocol; the string-keyed registry over it lives in
:mod:`repro.allocators`.

To add an allocation method: implement one of the two protocol classes
(or wrap a ``(graph, params) -> mapping`` function in
:class:`FunctionAllocator`) and register it with
``repro.allocators.register(...)`` — every harness, comparison figure
and CLI flag picks it up by name.
"""

from repro.core.allocation import Allocation, capped_throughput
from repro.core.allocator import (
    AllocationUpdate,
    AllocatorBase,
    FixedMappingAllocator,
    FunctionAllocator,
    OnlineAllocator,
    OnlineRunResult,
    StaticAllocator,
    ensure_online,
    hash_fallback_shard,
)
from repro.core.forecast import (
    DecayingTransactionGraph,
    forecast_error,
    forecast_graph,
)
from repro.core.atxallo import ATxAlloResult, a_txallo
from repro.core.controller import TxAlloController, UpdateEvent
from repro.core.csr import CSRGraph
from repro.core.engine import AdaptiveWorkspace
from repro.core.graph import MutationJournal, Node, TransactionGraph, pair_count
from repro.core.gtxallo import GTxAlloResult, g_txallo
from repro.core.louvain import louvain_partition, modularity
from repro.core.metrics import (
    MetricsReport,
    average_latency,
    evaluate_allocation,
    graph_cross_shard_ratio,
    graph_shard_workloads,
    graph_throughput,
    is_cross_shard,
    mu,
    shard_latency,
    workload_balance,
    worst_case_latency,
)
from repro.core.objective import GainComputer
from repro.core.persistence import (
    AllocationCheckpoint,
    allocation_digest,
    load_allocation,
    save_allocation,
)
from repro.core.resilience import ResilientAllocator
from repro.core.workload_model import (
    RoleAwareModel,
    ShardRole,
    UniformEta,
    WorkloadModel,
    effective_eta,
    evaluate_with_model,
    shard_roles,
)
from repro.core.params import TxAlloParams

__all__ = [
    "AdaptiveWorkspace",
    "Allocation",
    "AllocationCheckpoint",
    "AllocationUpdate",
    "AllocatorBase",
    "CSRGraph",
    "MutationJournal",
    "FixedMappingAllocator",
    "FunctionAllocator",
    "OnlineAllocator",
    "OnlineRunResult",
    "ResilientAllocator",
    "StaticAllocator",
    "ensure_online",
    "hash_fallback_shard",
    "DecayingTransactionGraph",
    "RoleAwareModel",
    "ShardRole",
    "UniformEta",
    "WorkloadModel",
    "allocation_digest",
    "effective_eta",
    "evaluate_with_model",
    "forecast_error",
    "forecast_graph",
    "load_allocation",
    "save_allocation",
    "shard_roles",
    "ATxAlloResult",
    "GTxAlloResult",
    "GainComputer",
    "MetricsReport",
    "Node",
    "TransactionGraph",
    "TxAlloController",
    "TxAlloParams",
    "UpdateEvent",
    "a_txallo",
    "average_latency",
    "capped_throughput",
    "evaluate_allocation",
    "g_txallo",
    "graph_cross_shard_ratio",
    "graph_shard_workloads",
    "graph_throughput",
    "is_cross_shard",
    "louvain_partition",
    "modularity",
    "mu",
    "pair_count",
    "shard_latency",
    "workload_balance",
    "worst_case_latency",
]
