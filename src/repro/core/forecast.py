"""Transaction-pattern forecasting (paper Section VIII, future work).

    "As this work and existing works rely on the assumption that future
    transaction patterns are similar to historical transactions, we
    leave the prediction of future transactions as our future work."

This module implements the natural first step of that future work: an
exponentially *decaying* transaction graph.  Instead of weighting all
history equally, each τ-block window multiplies existing edge weights by
a decay factor before ingesting the new window — the resulting graph is
an EWMA forecast of the next window's traffic, emphasising recent
patterns and forgetting dead ones.

:class:`DecayingTransactionGraph` is a drop-in :class:`TransactionGraph`
(it *is* one), so G-TxAllo runs on it unchanged;
``benchmarks/bench_ablation_forecast.py`` measures whether allocating on
the decayed graph predicts the next window better than allocating on raw
cumulative history under drift.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.graph import Node, TransactionGraph
from repro.errors import ParameterError


class DecayingTransactionGraph(TransactionGraph):
    """A transaction graph whose past fades exponentially.

    ``decay`` is the per-window retention factor in (0, 1]; 1.0 degrades
    to the plain cumulative graph.  Edges whose weight falls below
    ``prune_threshold`` are dropped, keeping the graph's size bounded by
    recent activity rather than by chain length.
    """

    __slots__ = ("decay", "prune_threshold", "_windows_advanced")

    def __init__(self, decay: float = 0.8, prune_threshold: float = 1e-4) -> None:
        if not 0.0 < decay <= 1.0:
            raise ParameterError(f"decay must be in (0, 1], got {decay!r}")
        if prune_threshold < 0.0:
            raise ParameterError(
                f"prune_threshold must be >= 0, got {prune_threshold!r}"
            )
        super().__init__()
        self.decay = decay
        self.prune_threshold = prune_threshold
        self._windows_advanced = 0

    @classmethod
    def from_halflife(
        cls, halflife_windows: float, prune_threshold: float = 1e-4
    ) -> "DecayingTransactionGraph":
        """Build with a decay such that weight halves every ``halflife``."""
        if halflife_windows <= 0:
            raise ParameterError(
                f"halflife must be positive, got {halflife_windows!r}"
            )
        return cls(decay=0.5 ** (1.0 / halflife_windows), prune_threshold=prune_threshold)

    @property
    def windows_advanced(self) -> int:
        return self._windows_advanced

    def _copy_extra_into(self, clone: TransactionGraph) -> None:
        """Keep decay state across :meth:`TransactionGraph.copy`.

        Regression guard: the inherited ``copy()`` used to construct a
        plain ``TransactionGraph``, silently dropping ``decay``,
        ``prune_threshold`` and the window counter.
        """
        clone.decay = self.decay
        clone.prune_threshold = self.prune_threshold
        clone._windows_advanced = self._windows_advanced

    def advance_window(self) -> int:
        """Apply one window's decay; returns the number of pruned edges.

        Call once per τ-block window, *before* ingesting its
        transactions.  Isolated nodes left behind by pruning are removed
        as well — a forgotten account is indistinguishable from a new
        one, exactly how A-TxAllo treats unseen accounts.
        """
        self._windows_advanced += 1
        if self.decay == 1.0:
            return 0
        # This mutates the adjacency outside add_node/add_edge — weights
        # shrink and rows may vanish, which the append-only freeze delta
        # cannot describe.  Bump the version AND poison the delta log so
        # the next freeze() re-lowers from scratch instead of extending a
        # pre-decay snapshot.
        self._mark_bulk_mutation()
        pruned = 0
        for v, row in self._adj.items():
            doomed = []
            for u, w in row.items():
                new_w = w * self.decay
                if new_w < self.prune_threshold:
                    doomed.append(u)
                else:
                    row[u] = new_w
            for u in doomed:
                row.pop(u)
                if u != v:
                    # Remove the mirror entry; both directions vanish in
                    # this one pass, so count the pair exactly once here.
                    self._adj[u].pop(v, None)
                pruned += 1
                self._num_edges -= 1
        # Surviving edges decayed uniformly; recompute the total exactly.
        self._total_weight = sum(
            w for v, row in self._adj.items() for u, w in row.items() if u >= v
        )
        # Drop nodes whose last edge was pruned (from either side).
        for v in [v for v, row in self._adj.items() if not row]:
            del self._adj[v]
        return pruned

    def ingest_window(self, transactions: Iterable[Sequence[Node]]) -> None:
        """Decay, then add one window's transactions."""
        self.advance_window()
        for accounts in transactions:
            self.add_transaction(accounts)


def forecast_graph(
    windows: Sequence[Sequence[Sequence[Node]]],
    halflife_windows: float = 4.0,
) -> DecayingTransactionGraph:
    """Fold a window sequence into an EWMA forecast graph.

    ``windows`` is a list of windows, each a list of account tuples,
    oldest first.  The returned graph weights window ``i`` (0-based,
    ``n`` windows total) by ``0.5 ** ((n - 1 - i) / halflife)``.
    """
    graph = DecayingTransactionGraph.from_halflife(halflife_windows)
    for window in windows:
        graph.ingest_window(window)
    return graph


def forecast_error(
    forecast: TransactionGraph, actual: TransactionGraph
) -> float:
    """Normalised L1 distance between two graphs' edge distributions.

    Both graphs' weights are normalised to sum to 1; the result is in
    [0, 2], 0 meaning identical transaction patterns.  Used by the
    forecast ablation to show the decayed graph tracks a drifting
    workload more closely than cumulative history does.
    """
    f_total = forecast.total_weight
    a_total = actual.total_weight
    if f_total <= 0 or a_total <= 0:
        return 2.0 if (f_total > 0) != (a_total > 0) else 0.0
    distance = 0.0
    seen = set()
    for u, v, w in forecast.edges():
        key = (u, v) if u <= v else (v, u)
        seen.add(key)
        distance += abs(w / f_total - actual.edge_weight(u, v) / a_total)
    for u, v, w in actual.edges():
        key = (u, v) if u <= v else (v, u)
        if key not in seen:
            distance += w / a_total
    return distance
