"""A live, tick-driven sharded network with dynamic reallocation.

:mod:`repro.chain.simulator` reproduces the paper's *analytic* setting:
all workload present at t=0, drained at rate λ.  This module simulates
the *deployed* setting instead: transactions arrive over time, each tick
is one block interval, every shard processes up to λ workload per tick,
and any :class:`~repro.core.allocator.OnlineAllocator` decides where
accounts live *as the system runs*.

The network is allocator-agnostic: it speaks only the allocator
protocol (``observe_block`` before routing, ``shard_of`` for every
account, ``freeze_stats`` for the report).  The dynamic
:class:`~repro.core.controller.TxAlloController`, the online Shard
Scheduler, and any static mapping frozen into a
:class:`~repro.core.allocator.FixedMappingAllocator` all plug in through
the same seam — a plain account→shard dict is auto-wrapped, with the
protocol's hash fallback (not a hard-coded shard 0) routing accounts the
mapping misses.  :func:`repro.allocators.get_online` builds any
registered method in live form.

A cross-shard transaction completes only when **every** involved shard
has processed its slice (the 2PC atomicity of Section II-B); its
end-to-end latency is the maximum over shards.  New accounts appearing
in live traffic are routed by the allocator's fallback policy until its
next scheduled update places them.

With a :class:`TxAlloController` allocator the tick loop no longer pays
repeated from-scratch graph freezes: each block's ingest perturbs only a
small frontier, so the controller's scheduled updates extend the frozen
CSR snapshot incrementally (delta-freeze).
:attr:`LiveReport.freeze_stats` carries the full/delta/cached counters
for the run.

This closes the loop the paper argues for qualitatively: with TxAllo
steering allocation, the same network sustains a higher committed TPS
than with hash allocation — ``tests/test_live.py`` asserts exactly that,
and :func:`repro.eval.experiments.live_compare` tables it for the whole
method set.

Failure semantics are injectable and reported, not assumed away: a
:class:`~repro.chain.faults.FaultPlan` makes the allocator raise or
stall shards at deterministic blocks, and the network *itself* stays
honest about the consequences — malformed deliveries are dropped with a
counter, every tick records whether routing was degraded, and
:attr:`LiveReport.resilience_stats` carries the supervision counters
when the allocator is a
:class:`~repro.core.resilience.ResilientAllocator`.  An *unsupervised*
allocator under the same plan raises out of :meth:`tick` — surviving
faults is the supervisor's job, not something the network hides.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Dict, Iterable, List, Mapping, Optional, Sequence, Union

from repro.chain.shard import ShardState
from repro.chain.types import Transaction
from repro.core.allocator import OnlineAllocator, ensure_online
from repro.core.params import TxAlloParams
from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (faults -> core)
    from repro.chain.faults import FaultPlan


@dataclasses.dataclass(frozen=True)
class TickStats:
    """What happened during one block interval."""

    tick: int
    arrived: int
    committed: int
    cross_shard_arrived: int
    backlog_workload: float
    #: Allocation-update kind reported by the allocator this tick
    #: ("global" / "adaptive" / "migration" / ...), or None.
    allocation_update: Optional[str]
    #: True when the allocator served this tick degraded (frozen
    #: last-good mapping; see repro.core.resilience).
    degraded: bool = False
    #: Shards that processed nothing this tick (injected stall windows).
    stalled_shards: int = 0
    #: Malformed deliveries dropped at validation this tick.
    dropped_malformed: int = 0


@dataclasses.dataclass
class LiveReport:
    """Aggregates over a whole run."""

    ticks: List[TickStats]
    committed: int
    arrived: int
    mean_latency: float
    p99_latency: int
    cross_shard_ratio: float
    #: Controller-graph snapshot counters ({"full", "delta", "cached"});
    #: None for allocators that never freeze a graph.
    freeze_stats: Optional[Dict[str, int]] = None
    #: Ticks served on the frozen last-good mapping.
    degraded_ticks: int = 0
    #: Times routing fell over to the frozen mapping (healthy -> degraded
    #: transitions of a supervised allocator).
    failovers: int = 0
    #: Malformed deliveries dropped at validation over the whole run.
    dropped_malformed: int = 0
    #: Supervision counters of a ResilientAllocator, else None (mirrors
    #: freeze_stats).
    resilience_stats: Optional[Dict[str, int]] = None

    @property
    def committed_per_tick(self) -> float:
        if not self.ticks:
            return 0.0
        return self.committed / len(self.ticks)


class LiveShardedNetwork:
    """Tick-driven network of ``k`` shards with pluggable allocation.

    ``allocator`` is anything :func:`~repro.core.allocator.ensure_online`
    accepts: an :class:`OnlineAllocator` (driven live — it observes every
    block of arriving transactions and is consulted for every routing
    decision) or a static ``dict`` account→shard (frozen, with the hash
    fallback routing accounts it misses).

    ``fault_plan`` injects a :class:`~repro.chain.faults.FaultPlan`:
    shard stalls and delivery faults are applied by the network itself;
    allocator faults are installed via
    :func:`~repro.chain.faults.with_faults` — *inside* a supervised
    wrapper (which absorbs them) or around a bare allocator (whose
    failures then propagate out of :meth:`tick`, by design).
    """

    def __init__(
        self,
        params: TxAlloParams,
        allocator: Union[OnlineAllocator, Mapping[str, int]],
        *,
        fault_plan: Optional["FaultPlan"] = None,
    ) -> None:
        self.params = params
        self.allocator: OnlineAllocator = ensure_online(allocator, params)
        self.fault_plan = fault_plan
        if fault_plan is not None:
            from repro.chain.faults import with_faults

            self.allocator = with_faults(self.allocator, fault_plan)
        self.shards: List[ShardState] = [
            ShardState(i, params.lam) for i in range(params.k)
        ]
        self.now = 0
        self._seq = 0  # unique arrival ids: identical transfers repeat in
        self._pending_completions: Dict[str, int] = {}
        self._tx_enqueued_at: Dict[str, int] = {}
        self._latencies: List[int] = []
        self._committed = 0
        self._arrived = 0
        self._cross_arrived = 0
        self._degraded_ticks = 0
        self._dropped_malformed = 0
        self.ticks: List[TickStats] = []

    # ------------------------------------------------------------------
    def _shard_of(self, account: str) -> int:
        return self.allocator.shard_of(account)

    def _route(self, tx: Transaction) -> int:
        """Enqueue one arrival on its involved shards; returns ``m``.

        The returned shard count is the routing decision actually taken,
        so per-tick cross-shard stats come from here instead of a second
        round of ``shard_of`` queries after the fact.
        """
        involved = sorted({self._shard_of(a) for a in tx.accounts})
        m = len(involved)
        self._arrived += 1
        if m > 1:
            self._cross_arrived += 1
        cost = 1.0 if m == 1 else self.params.eta
        share = 1.0 / m
        # Identical transfers share a content-derived tx_id; completion
        # tracking needs a unique id per *arrival*, so re-stamp.
        unique = Transaction(
            inputs=tx.inputs, outputs=tx.outputs, tx_id=f"{tx.tx_id}#{self._seq}"
        )
        self._seq += 1
        self._pending_completions[unique.tx_id] = m
        self._tx_enqueued_at[unique.tx_id] = self.now
        for shard in involved:
            self.shards[shard].enqueue(unique, cost=cost, share=share, now=self.now)
        return m

    # ------------------------------------------------------------------
    def tick(self, incoming: Iterable[Transaction]) -> TickStats:
        """One block interval: ingest arrivals, let every shard work."""
        incoming = list(incoming)
        plan = self.fault_plan
        if plan is not None:
            incoming = incoming + plan.injected_deliveries(self.now, incoming)

        # Delivery validation: malformed objects are dropped with a
        # counter — they reach neither the allocator nor a shard queue.
        valid: List[Transaction] = []
        dropped_now = 0
        for tx in incoming:
            if isinstance(tx, Transaction) and tx.accounts:
                valid.append(tx)
            else:
                dropped_now += 1
        self._dropped_malformed += dropped_now

        # The allocator learns about the block *and* may update the
        # allocation; routing below uses the updated mapping (the paper
        # applies a fresh mapping from the next block onward).
        event = self.allocator.observe_block(
            [tuple(tx.accounts) for tx in valid]
        )
        update = event.kind if event is not None else None

        # Routing records the cross-shard decision as it is taken —
        # one shard_of pass per account, and the stat cannot drift from
        # the queues it describes.
        cross_now = 0
        for tx in valid:
            if self._route(tx) > 1:
                cross_now += 1

        committed_now = 0
        stalled_now = 0
        for shard in self.shards:
            if plan is not None and plan.stalled(shard.shard_id, self.now):
                # The shard processes zero capacity this tick; its queue
                # accrues and drains at normal capacity once the stall
                # window ends.
                stalled_now += 1
                continue
            for done in shard.step(now=self.now):
                tx_id = done.item.tx.tx_id
                remaining = self._pending_completions.get(tx_id)
                if remaining is None:
                    raise SimulationError(f"completion for unknown tx {tx_id}")
                if remaining == 1:
                    del self._pending_completions[tx_id]
                    latency = self.now - self._tx_enqueued_at.pop(tx_id) + 1
                    self._latencies.append(latency)
                    self._committed += 1
                    committed_now += 1
                else:
                    self._pending_completions[tx_id] = remaining - 1

        degraded = bool(self.allocator.degraded)
        if degraded:
            self._degraded_ticks += 1
        stats = TickStats(
            tick=self.now,
            arrived=len(valid),
            committed=committed_now,
            cross_shard_arrived=cross_now,
            backlog_workload=sum(s.backlog_workload for s in self.shards),
            allocation_update=update,
            degraded=degraded,
            stalled_shards=stalled_now,
            dropped_malformed=dropped_now,
        )
        self.ticks.append(stats)
        self.now += 1
        return stats

    def run(
        self,
        blocks: Sequence[Sequence[Transaction]],
        drain: bool = True,
        max_drain_ticks: int = 100_000,
    ) -> LiveReport:
        """Feed blocks one per tick, optionally drain the backlog."""
        for block in blocks:
            self.tick(block)
        if drain:
            idle = 0
            while self._pending_completions:
                self.tick([])
                idle += 1
                if idle > max_drain_ticks:
                    raise SimulationError(
                        f"backlog failed to drain within {max_drain_ticks} ticks"
                    )
        return self.report()

    # ------------------------------------------------------------------
    def report(self) -> LiveReport:
        latencies = sorted(self._latencies)
        mean = sum(latencies) / len(latencies) if latencies else 0.0
        p99 = latencies[int(0.99 * (len(latencies) - 1))] if latencies else 0
        resilience = self.allocator.resilience_stats
        return LiveReport(
            ticks=list(self.ticks),
            committed=self._committed,
            arrived=self._arrived,
            mean_latency=mean,
            p99_latency=p99,
            cross_shard_ratio=(
                self._cross_arrived / self._arrived if self._arrived else 0.0
            ),
            freeze_stats=self.allocator.freeze_stats,
            degraded_ticks=self._degraded_ticks,
            failovers=resilience["failovers"] if resilience else 0,
            dropped_malformed=self._dropped_malformed,
            resilience_stats=dict(resilience) if resilience else None,
        )
