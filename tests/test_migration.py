"""Tests for state-migration accounting (Section VII)."""

import pytest

from repro.chain.migration import (
    DEFAULT_ACCOUNT_STATE_BYTES,
    migration_plan,
)
from repro.errors import AllocationError, ParameterError


OLD = {"a": 0, "b": 0, "c": 1, "d": 2}
NEW = {"a": 0, "b": 1, "c": 1, "d": 0, "e": 2}


class TestPlan:
    def test_moves_detected(self):
        plan = migration_plan(OLD, NEW, k=3)
        moved = {(m.account, m.source, m.destination) for m in plan.moves}
        assert moved == {("b", 0, 1), ("d", 2, 0)}

    def test_new_accounts_are_not_migrations(self):
        plan = migration_plan(OLD, NEW, k=3)
        assert plan.new_accounts == ("e",)
        assert plan.moved_count == 2

    def test_churn_ratio(self):
        plan = migration_plan(OLD, NEW, k=3)
        assert plan.churn_ratio == pytest.approx(2 / 4)

    def test_flows_balance(self):
        plan = migration_plan(OLD, NEW, k=3)
        assert sum(plan.inflow()) == sum(plan.outflow()) == plan.moved_count
        assert plan.inflow() == [1, 1, 0]
        assert plan.outflow() == [1, 0, 1]

    def test_identity_update_is_free(self):
        plan = migration_plan(OLD, OLD, k=3)
        assert plan.moved_count == 0
        assert plan.churn_ratio == 0.0

    def test_vanishing_account_rejected(self):
        with pytest.raises(AllocationError):
            migration_plan(OLD, {"a": 0}, k=3)

    def test_out_of_range_shard_rejected(self):
        with pytest.raises(AllocationError):
            migration_plan({"a": 0}, {"a": 9}, k=3)

    def test_invalid_k(self):
        with pytest.raises(ParameterError):
            migration_plan({}, {}, k=0)

    def test_moves_deterministically_ordered(self):
        plan = migration_plan(OLD, NEW, k=3)
        accounts = [m.account for m in plan.moves]
        assert accounts == sorted(accounts)


class TestOverheadModel:
    def test_type1_full_replication_is_free(self):
        plan = migration_plan(OLD, NEW, k=3)
        assert plan.storage_overhead_bytes(sharded_state=False) == 0

    def test_type2_pays_storage_per_moved_account(self):
        plan = migration_plan(OLD, NEW, k=3)
        assert plan.storage_overhead_bytes(sharded_state=True) == (
            2 * DEFAULT_ACCOUNT_STATE_BYTES
        )

    def test_custom_state_size(self):
        plan = migration_plan(OLD, NEW, k=3)
        assert plan.storage_overhead_bytes(True, account_state_bytes=1000) == 2000

    def test_negative_state_size_rejected(self):
        plan = migration_plan(OLD, NEW, k=3)
        with pytest.raises(ParameterError):
            plan.storage_overhead_bytes(True, account_state_bytes=-1)

    def test_no_communication_overhead(self):
        """Section VII's claim: reallocation costs storage, not messages."""
        plan = migration_plan(OLD, NEW, k=3)
        assert plan.communication_overhead_messages() == 0


class TestEndToEnd:
    def test_adaptive_update_has_low_churn(self, small_workload):
        """A-TxAllo only moves touched accounts, so churn stays small."""
        from repro.core.atxallo import a_txallo
        from repro.core.gtxallo import g_txallo
        from repro.core.params import TxAlloParams

        graph = small_workload["graph"].copy()
        params = TxAlloParams.with_capacity_for(
            len(small_workload["sets"]), k=6, eta=2.0
        )
        alloc = g_txallo(graph, params).allocation
        before = alloc.mapping()
        import random

        rng = random.Random(3)
        nodes = list(graph.nodes())
        touched = set()
        for _ in range(50):
            accounts = tuple(rng.sample(nodes, 2))
            graph.add_transaction(accounts)
            alloc.ingest_transaction(accounts)
            touched.update(accounts)
        a_txallo(alloc, touched)
        plan = migration_plan(before, alloc.mapping(), k=6)
        assert plan.churn_ratio < 0.05
