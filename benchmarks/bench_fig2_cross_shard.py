"""Figure 2 — cross-shard transaction ratio vs. number of shards.

Paper (k=60): hash-based random ~98 %, METIS ~28 %, TxAllo ~12 %.
Shapes asserted here: TxAllo lowest at every (k, eta); random approaches 1;
METIS between; TxAllo's ratio self-adjusts (does not grow) with eta.
"""

import pytest

from repro.core.gtxallo import g_txallo
from repro.core.params import TxAlloParams
from repro.eval import experiments


@pytest.fixture(scope="module")
def fig2(sweep_records):
    return experiments.figure2(sweep_records)


def test_fig2_report(fig2):
    print()
    print(fig2.render())


@pytest.mark.parametrize("eta", [2.0, 6.0, 10.0])
def test_txallo_always_lowest(fig2, eta):
    for k in (10, 20, 40, 60):
        ours = fig2.value(eta, "txallo", k)
        assert ours < fig2.value(eta, "random", k)
        assert ours < fig2.value(eta, "metis", k)
        assert ours < fig2.value(eta, "shard_scheduler", k)


def test_random_near_one_at_scale(fig2):
    assert fig2.value(2.0, "random", 60) > 0.9  # paper: 98%


def test_txallo_stays_low_at_60_shards(fig2):
    assert fig2.value(2.0, "txallo", 60) < 0.3  # paper: ~12%


def test_metis_between_txallo_and_random(fig2):
    metis = fig2.value(2.0, "metis", 60)
    assert fig2.value(2.0, "txallo", 60) < metis < fig2.value(2.0, "random", 60)


def test_eta_self_adjustment(fig2):
    """Section VI-B2: larger eta must not inflate TxAllo's ratio."""
    assert fig2.value(10.0, "txallo", 60) <= fig2.value(2.0, "txallo", 60) + 0.05


def test_bench_gtxallo_k60(workload, benchmark):
    """pytest-benchmark target: one full G-TxAllo run at k=60, eta=2."""
    params = TxAlloParams.with_capacity_for(workload.num_transactions, k=60, eta=2.0)
    benchmark.pedantic(
        g_txallo, args=(workload.graph, params), rounds=1, iterations=1
    )
