"""Tests for the decaying/forecast transaction graph (Section VIII)."""

import pytest

from repro.core.forecast import (
    DecayingTransactionGraph,
    forecast_error,
    forecast_graph,
)
from repro.core.graph import TransactionGraph
from repro.errors import ParameterError


class TestConstruction:
    def test_invalid_decay(self):
        with pytest.raises(ParameterError):
            DecayingTransactionGraph(decay=0.0)
        with pytest.raises(ParameterError):
            DecayingTransactionGraph(decay=1.5)

    def test_invalid_prune(self):
        with pytest.raises(ParameterError):
            DecayingTransactionGraph(prune_threshold=-1.0)

    def test_from_halflife(self):
        g = DecayingTransactionGraph.from_halflife(2.0)
        assert g.decay == pytest.approx(0.5 ** 0.5)
        with pytest.raises(ParameterError):
            DecayingTransactionGraph.from_halflife(0.0)

    def test_is_a_transaction_graph(self):
        assert isinstance(DecayingTransactionGraph(), TransactionGraph)


class TestDecay:
    def test_weights_decay_per_window(self):
        g = DecayingTransactionGraph(decay=0.5)
        g.add_transaction(("a", "b"))
        g.advance_window()
        assert g.edge_weight("a", "b") == pytest.approx(0.5)
        assert g.total_weight == pytest.approx(0.5)

    def test_decay_one_is_noop(self):
        g = DecayingTransactionGraph(decay=1.0)
        g.add_transaction(("a", "b"))
        assert g.advance_window() == 0
        assert g.edge_weight("a", "b") == 1.0

    def test_advance_window_invalidates_frozen_snapshot(self):
        """Regression: advance_window mutates the adjacency outside
        add_node/add_edge and must invalidate the cached CSR, or the
        fast backend keeps allocating on pre-decay weights."""
        g = DecayingTransactionGraph(decay=0.5)
        g.add_transaction(("a", "b"))
        stale = g.freeze()
        assert g.freeze() is stale  # cached while unchanged
        g.advance_window()
        fresh = g.freeze()
        assert fresh is not stale
        assert fresh.total_weight == pytest.approx(0.5)

    def test_fast_and_reference_agree_after_decay(self):
        from repro.core.gtxallo import g_txallo
        from repro.core.params import TxAlloParams

        params = TxAlloParams(k=2, eta=2.0, lam=10.0)
        g = DecayingTransactionGraph(decay=0.5)
        g.add_transactions([("a", "b"), ("c", "d"), ("a", "c")])
        g_txallo(g, params)  # warms the freeze cache
        g.advance_window()
        fast = g_txallo(g, params, backend="fast").allocation
        ref = g_txallo(g, params, backend="reference").allocation
        assert fast.mapping() == ref.mapping()
        assert fast.sigma == ref.sigma

    def test_self_loop_decays(self):
        g = DecayingTransactionGraph(decay=0.5)
        g.add_transaction(("a",))
        g.advance_window()
        assert g.self_loop("a") == pytest.approx(0.5)

    def test_symmetry_preserved(self):
        g = DecayingTransactionGraph(decay=0.7)
        g.add_transaction(("a", "b"))
        g.add_transaction(("b", "c"))
        g.advance_window()
        for u, v, w in g.edges():
            assert g.edge_weight(v, u) == pytest.approx(w)

    def test_pruning_removes_faded_edges(self):
        g = DecayingTransactionGraph(decay=0.1, prune_threshold=0.05)
        g.add_transaction(("a", "b"))
        pruned = g.advance_window()  # 1.0 -> 0.1, survives
        assert pruned == 0
        pruned = g.advance_window()  # 0.1 -> 0.01 < 0.05, pruned
        assert pruned == 1
        assert g.num_edges == 0
        assert "a" not in g and "b" not in g

    def test_counters_stay_consistent_after_pruning(self):
        g = DecayingTransactionGraph(decay=0.4, prune_threshold=0.2)
        g.add_transaction(("a", "b"))
        g.add_transaction(("b", "c"))
        g.add_transaction(("d",))
        g.advance_window()
        g.add_transaction(("a", "b"))  # refresh one edge
        g.advance_window()
        # Recount edges by iteration and compare with the counter.
        assert g.num_edges == sum(1 for _ in g.edges())
        assert g.total_weight == pytest.approx(sum(w for _, _, w in g.edges()))

    def test_windows_advanced_counter(self):
        g = DecayingTransactionGraph(decay=0.9)
        g.advance_window()
        g.ingest_window([("a", "b")])
        assert g.windows_advanced == 2

    def test_copy_preserves_class_and_decay_state(self):
        """Regression: the inherited ``TransactionGraph.copy`` used to
        build a plain ``TransactionGraph``, dropping ``decay``,
        ``prune_threshold`` and the window counter."""
        g = DecayingTransactionGraph(decay=0.7, prune_threshold=0.01)
        g.add_transaction(("a", "b"))
        g.advance_window()
        clone = g.copy()
        assert type(clone) is DecayingTransactionGraph
        assert clone.decay == 0.7
        assert clone.prune_threshold == 0.01
        assert clone.windows_advanced == 1
        assert clone.edge_weight("a", "b") == pytest.approx(0.7)
        # The clone decays independently of the original.
        clone.advance_window()
        assert clone.edge_weight("a", "b") == pytest.approx(0.49)
        assert g.edge_weight("a", "b") == pytest.approx(0.7)
        assert g.windows_advanced == 1

    def test_recent_window_outweighs_old(self):
        g = DecayingTransactionGraph(decay=0.5)
        g.ingest_window([("a", "b")] * 4)
        g.ingest_window([("c", "d")] * 4)
        assert g.edge_weight("c", "d") > g.edge_weight("a", "b")


class TestForecastGraph:
    def test_fold_windows(self):
        windows = [[("a", "b")], [("a", "b")], [("c", "d")]]
        g = forecast_graph(windows, halflife_windows=1.0)
        # a-b: 1*0.25 + 1*0.5 = 0.75 ; c-d: 1.0
        assert g.edge_weight("a", "b") == pytest.approx(0.75)
        assert g.edge_weight("c", "d") == pytest.approx(1.0)

    def test_usable_by_gtxallo(self):
        from repro.core.gtxallo import g_txallo
        from repro.core.params import TxAlloParams

        windows = [
            [("a", "b"), ("b", "c"), ("x", "y"), ("y", "z")] for _ in range(3)
        ]
        g = forecast_graph(windows, halflife_windows=2.0)
        params = TxAlloParams.with_capacity_for(12, k=2, eta=2.0)
        result = g_txallo(g, params)
        mapping = result.allocation.mapping()
        assert mapping["a"] == mapping["b"] == mapping["c"]
        assert mapping["x"] == mapping["y"] == mapping["z"]
        assert mapping["a"] != mapping["x"]


class TestForecastError:
    def test_identical_graphs_zero(self):
        g = TransactionGraph()
        g.add_transaction(("a", "b"))
        h = g.copy()
        assert forecast_error(g, h) == pytest.approx(0.0)

    def test_disjoint_graphs_max(self):
        g = TransactionGraph()
        g.add_transaction(("a", "b"))
        h = TransactionGraph()
        h.add_transaction(("x", "y"))
        assert forecast_error(g, h) == pytest.approx(2.0)

    def test_scale_invariant(self):
        g = TransactionGraph()
        for _ in range(3):
            g.add_transaction(("a", "b"))
        h = TransactionGraph()
        h.add_transaction(("a", "b"))
        assert forecast_error(g, h) == pytest.approx(0.0)

    def test_decayed_graph_tracks_drift_better(self):
        """Under pattern drift, the EWMA forecast is closer to the next
        window than cumulative history — the ablation's core claim."""
        old_pattern = [("a", "b"), ("b", "c")] * 20
        new_pattern = [("x", "y"), ("y", "z")] * 20

        cumulative = TransactionGraph()
        decayed = DecayingTransactionGraph(decay=0.3)
        for window in (old_pattern, old_pattern, new_pattern):
            for tx in window:
                cumulative.add_transaction(tx)
            decayed.ingest_window(window)

        future = TransactionGraph()
        for tx in new_pattern:
            future.add_transaction(tx)

        assert forecast_error(decayed, future) < forecast_error(cumulative, future)
