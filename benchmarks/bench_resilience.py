"""Resilience run-table: committed TPS retention and recovery under the
standard fault plan.

PR 6 made live allocation survivable: a
:class:`repro.core.resilience.ResilientAllocator` supervises the TxAllo
controller with exception isolation, block-clocked retry/backoff, a
circuit breaker with degraded last-good routing, and checkpoint-based
crash recovery.  This benchmark quantifies what the supervision buys.

The same live stream runs twice through
:class:`repro.chain.live.LiveShardedNetwork`:

* **baseline** — a bare :class:`TxAlloController`, no faults;
* **faulted** — the same controller wrapped in ``ResilientAllocator``,
  under :func:`repro.chain.faults.FaultPlan.standard` (an
  allocator-raise burst at the first τ₂ refresh plus a 5-tick shard
  stall window).

Both runs drain fully, so ``committed`` is equal by construction and the
damage shows up as extra ticks; the headline number is **TPS retention**
(faulted committed-per-tick over baseline).  Recovery is the degraded
block count plus the assertion that the circuit re-closed.  Writes
``BENCH_resilience.json`` next to this file:

``{"scale", "tps_retention", "recovery_blocks", "degraded_ticks",
"circuit_state", "resilience_stats", ...}``

Gates (enforced by :func:`check_gates`, ``tests/test_bench_gate.py`` and
the CI perf job):

* committed TPS retention ≥ 0.7 under the standard plan;
* the circuit tripped (``trips`` ≥ 1) **and** recovered
  (``recoveries`` ≥ 1, final state ``closed``);
* no transaction lost (``committed == arrived`` in both runs).

Scale knob: ``--scale`` / the ``BENCH_SCALE`` env crank the workload
(CI pins 0.5 for runner budget).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

try:  # script mode from a clean checkout: resolve the src layout
    import repro  # noqa: F401
except ImportError:
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.core.parallel import pin_blas_threads

# Explicit thread ownership for honest timings: pin the BLAS/OpenMP
# knobs before any repro import can pull numpy in (the multi-core
# layer owns its parallelism -- see repro.core.parallel).
pin_blas_threads()

from repro.chain.faults import FaultPlan
from repro.chain.live import LiveShardedNetwork
from repro.core.controller import TxAlloController
from repro.core.params import TxAlloParams
from repro.core.resilience import ResilientAllocator
from repro.data.synthetic import EthereumWorkloadGenerator, WorkloadConfig

BENCH_SCALE = float(os.environ.get("BENCH_SCALE", "0.5"))

K = 8
ETA = 2.0
TAU1 = 2
TAU2 = 10
BLOCK_SIZE = 100
#: Total capacity k·λ relative to the mean live block size; headroom so
#: the fault-free baseline keeps up and the stall window is the
#: bottleneck being measured.
CAPACITY_FACTOR = 1.5

#: Acceptance gate from ISSUE: the supervised run keeps ≥ 70% of the
#: fault-free committed TPS under the standard plan.
TPS_RETENTION_GATE = 0.7

OUT_PATH = Path(__file__).resolve().parent / "BENCH_resilience.json"


def _blocks(scale: float, seed: int = 2023):
    config = WorkloadConfig(
        num_accounts=max(100, int(4_000 * scale)),
        num_transactions=max(1_000, int(20_000 * scale)),
        block_size=BLOCK_SIZE,
        seed=seed,
    )
    gen = EthereumWorkloadGenerator(config)
    return [list(block.transactions) for block in gen.blocks()]


def _make_params(blocks) -> TxAlloParams:
    mean_block = sum(len(b) for b in blocks) / len(blocks)
    lam = max(1.0, CAPACITY_FACTOR * mean_block / K)
    return TxAlloParams(
        k=K,
        eta=ETA,
        lam=lam,
        epsilon=1e-5 * sum(len(b) for b in blocks),
        tau1=TAU1,
        tau2=TAU2,
    )


def _seed_sets(blocks):
    return [tuple(tx.accounts) for block in blocks for tx in block]


def run_bench(scale: float = BENCH_SCALE, out_path: Path = OUT_PATH) -> dict:
    blocks = _blocks(scale)
    split = max(1, len(blocks) // 3)
    seed_blocks, live_blocks = blocks[:split], blocks[split:]
    params = _make_params(live_blocks)
    seed = _seed_sets(seed_blocks)
    plan = FaultPlan.standard(params.tau2)

    baseline_net = LiveShardedNetwork(
        params, TxAlloController(params, seed_transactions=seed)
    )
    baseline = baseline_net.run(live_blocks, drain=True)

    supervised = ResilientAllocator(TxAlloController(params, seed_transactions=seed))
    faulted_net = LiveShardedNetwork(params, supervised, fault_plan=plan)
    faulted = faulted_net.run(live_blocks, drain=True)

    assert baseline.committed == baseline.arrived, "baseline lost transactions"
    assert faulted.committed == faulted.arrived, "faulted run lost transactions"

    stats = dict(supervised.resilience_stats)
    retention = (
        faulted.committed_per_tick / baseline.committed_per_tick
        if baseline.committed_per_tick > 0
        else 0.0
    )
    payload = {
        "scale": scale,
        "k": K,
        "eta": ETA,
        "lam": params.lam,
        "tau1": TAU1,
        "tau2": TAU2,
        "seed_blocks": len(seed_blocks),
        "live_blocks": len(live_blocks),
        "fault_plan": {
            "allocator_raise_burst": len(plan.allocator_faults),
            "stalls": [
                {"shard": s.shard, "start_tick": s.start_tick, "ticks": s.ticks}
                for s in plan.stalls
            ],
        },
        "baseline_committed": baseline.committed,
        "baseline_ticks": len(baseline.ticks),
        "baseline_tps": baseline.committed_per_tick,
        "faulted_committed": faulted.committed,
        "faulted_ticks": len(faulted.ticks),
        "faulted_tps": faulted.committed_per_tick,
        "tps_retention": retention,
        "recovery_blocks": stats["degraded_blocks"],
        "degraded_ticks": faulted.degraded_ticks,
        "failovers": faulted.failovers,
        "circuit_state": supervised.circuit_state,
        "resilience_stats": stats,
    }
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print()
    print(f"== resilience under the standard fault plan (scale={scale}) ==")
    for key, value in payload.items():
        print(f"  {key}: {value}")
    return payload


def check_gates(payload: dict) -> list:
    """Return the list of failed gate descriptions (empty = all green)."""
    failures = []
    if payload["tps_retention"] < TPS_RETENTION_GATE:
        failures.append(
            f"committed TPS retention {payload['tps_retention']:.3f} "
            f"< {TPS_RETENTION_GATE} under the standard fault plan"
        )
    stats = payload["resilience_stats"]
    if stats["trips"] < 1:
        failures.append("circuit breaker never tripped (fault plan not exercised)")
    if stats["recoveries"] < 1 or payload["circuit_state"] != "closed":
        failures.append(
            f"circuit did not recover (state={payload['circuit_state']!r}, "
            f"recoveries={stats['recoveries']})"
        )
    if payload["faulted_committed"] != payload["baseline_committed"]:
        failures.append("faulted run lost transactions relative to baseline")
    return failures


def test_resilience_run_table(bench_scale):
    payload = run_bench(scale=bench_scale)
    failures = check_gates(payload)
    assert not failures, "; ".join(failures)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", type=float, default=BENCH_SCALE,
        help="workload scale factor (default: BENCH_SCALE env or 0.5)",
    )
    parser.add_argument(
        "--out", type=Path, default=OUT_PATH,
        help=f"output run-table path (default {OUT_PATH.name} next to this file)",
    )
    args = parser.parse_args()
    result = run_bench(scale=args.scale, out_path=args.out)
    problems = check_gates(result)
    for problem in problems:
        print(f"GATE FAILED: {problem}", file=sys.stderr)
    sys.exit(1 if problems else 0)
