"""Tests for the txallo CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_figure_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_list_parsing(self):
        args = build_parser().parse_args(["fig2", "--ks", "2,4,8", "--etas", "2,6"])
        assert args.ks == [2, 4, 8]
        assert args.etas == [2.0, 6.0]

    def test_defaults(self):
        args = build_parser().parse_args(["fig1"])
        assert args.scale == 0.5
        assert args.k == 20
        assert args.methods is None

    def test_methods_parsing(self):
        args = build_parser().parse_args(
            ["fig2", "--methods", "txallo, metis,prefix"]
        )
        assert args.methods == ["txallo", "metis", "prefix"]

    def test_live_compare_accepted(self):
        args = build_parser().parse_args(["live-compare", "--lam", "12.5"])
        assert args.figure == "live-compare"
        assert args.lam == 12.5

    def test_matrix_accepted(self):
        args = build_parser().parse_args(
            ["matrix", "--spec", "spec.json", "--out", "results"]
        )
        assert args.figure == "matrix"
        assert args.spec == "spec.json"
        assert args.out == "results"

    def test_matrix_defaults(self):
        args = build_parser().parse_args(["matrix"])
        assert args.spec is None
        assert args.out is None


class TestMain:
    def test_fig1(self, capsys):
        assert main(["fig1", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out

    def test_fig2_small(self, capsys):
        assert main(["fig2", "--scale", "0.05", "--ks", "2,4", "--etas", "2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out
        assert "Our Method" in out

    def test_fig4_small(self, capsys):
        assert main(["fig4", "--scale", "0.05", "--k", "4"]) == 0
        assert "Figure 4" in capsys.readouterr().out

    def test_fig10_small(self, capsys):
        assert main(["fig10", "--scale", "0.05", "--k", "4", "--steps", "3"]) == 0
        assert "Figure 10" in capsys.readouterr().out

    def test_fig2_registry_methods(self, capsys):
        assert main([
            "fig2", "--scale", "0.05", "--ks", "2,4", "--etas", "2",
            "--methods", "txallo,prefix",
        ]) == 0
        out = capsys.readouterr().out
        assert "Prefix" in out
        assert "Shard Scheduler" not in out

    def test_unknown_method_rejected(self, capsys):
        assert main(["fig2", "--methods", "bogus"]) == 2
        assert "unknown allocator" in capsys.readouterr().err

    def test_live_compare_runs(self, capsys):
        assert main(["live-compare", "--scale", "0.05", "--k", "4"]) == 0
        out = capsys.readouterr().out
        assert "Live comparison" in out
        assert "committed TPS" in out
        for label in ("Our Method", "Random", "Metis", "Shard Scheduler"):
            assert label in out

    def test_matrix_smoke_spec(self, capsys):
        assert main(["matrix"]) == 0
        out = capsys.readouterr().out
        assert "Scenario matrix" in out
        assert "ethereum" in out
        assert "hotspot" in out

    def test_matrix_custom_spec_and_artifacts(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(
            '{"topologies": ["adversarial"], "scales": [0.02],'
            ' "allocators": ["txallo", "hash"], "reps": 1}'
        )
        out_dir = tmp_path / "out"
        assert main(
            ["matrix", "--spec", str(spec_path), "--out", str(out_dir)]
        ) == 0
        out = capsys.readouterr().out
        assert "adversarial" in out
        assert (out_dir / "run_table.csv").exists()
        assert (out_dir / "spec.json").exists()

    def test_matrix_bad_spec_rejected(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text('{"allocators": ["bogus"]}')
        assert main(["matrix", "--spec", str(spec_path)]) == 2
        assert "bogus" in capsys.readouterr().err
